package ddlog

import (
	"fmt"
	"strings"

	"repro/internal/storage"
)

// spatialPredicates lists the spatial predicates and functions allowed in
// rule conditions (paper Section III, "Spatial Predicates"): name → arity
// range and whether the call yields a boolean (usable bare) or a number
// (must appear in a comparison).
var spatialPredicates = map[string]struct {
	minArity, maxArity int
	boolean            bool
}{
	"distance":   {2, 3, false}, // distance(L1, L2 [, 'miles'|'km'])
	"within":     {2, 2, true},
	"overlaps":   {2, 2, true},
	"intersects": {2, 2, true},
	"contains":   {2, 2, true},
	"buffer":     {2, 2, false}, // buffer(geom, d) → geometry
	"union":      {2, 2, false}, // union(a, b) → geometry
}

// Validate semantically checks a parsed program:
//
//   - relation and column declarations are well-formed; @spatial appears
//     only on variable relations that have a spatial attribute (the rule
//     stated in Section III);
//   - rule bodies reference declared relations with the right arity, head
//     variables are bound in the body, and heads are variable relations;
//   - bracketed conditions reference bound variables, declared constants
//     (which are substituted in place), or valid spatial predicate calls;
//   - UDF declarations and applications line up.
//
// Validate mutates the program in one benign way: condition terms naming a
// declared constant are rewritten to that constant's value.
func (p *Program) Validate() error {
	if p.relByName == nil {
		if err := p.indexRelations(); err != nil {
			return err
		}
	}
	if err := p.validateRelations(); err != nil {
		return err
	}
	if err := p.validateConsts(); err != nil {
		return err
	}
	if err := p.validateFunctions(); err != nil {
		return err
	}
	for _, d := range p.Derivations {
		if err := p.validateDerivation(d); err != nil {
			return err
		}
	}
	for _, r := range p.Rules {
		if err := p.validateInference(r); err != nil {
			return err
		}
	}
	for _, a := range p.Apps {
		if err := p.validateApp(a); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateRelations() error {
	if len(p.Relations) == 0 {
		return fmt.Errorf("ddlog: program declares no relations")
	}
	for _, r := range p.Relations {
		seen := map[string]bool{}
		for _, c := range r.Cols {
			key := strings.ToLower(c.Name)
			if seen[key] {
				return fmt.Errorf("ddlog: line %d: relation %s: duplicate column %q", r.Line, r.Name, c.Name)
			}
			seen[key] = true
		}
		if r.Spatial != "" {
			if !r.IsVariable {
				return fmt.Errorf("ddlog: line %d: @spatial may only annotate variable relations (%s is a typical relation)", r.Line, r.Name)
			}
			if r.SpatialCol() < 0 {
				return fmt.Errorf("ddlog: line %d: @spatial requires %s to have a spatial attribute", r.Line, r.Name)
			}
		}
		if r.Categorical != 0 {
			if !r.IsVariable {
				return fmt.Errorf("ddlog: line %d: categorical(h) may only annotate variable relations", r.Line)
			}
			if r.Categorical < 2 {
				return fmt.Errorf("ddlog: line %d: categorical domain must have at least 2 values, got %d", r.Line, r.Categorical)
			}
		}
	}
	return nil
}

func (p *Program) validateConsts() error {
	seen := map[string]bool{}
	for _, c := range p.Consts {
		key := strings.ToLower(c.Name)
		if seen[key] {
			return fmt.Errorf("ddlog: line %d: constant %s declared twice", c.Line, c.Name)
		}
		seen[key] = true
		if _, isRel := p.Relation(c.Name); isRel {
			return fmt.Errorf("ddlog: line %d: constant %s shadows a relation", c.Line, c.Name)
		}
	}
	return nil
}

func (p *Program) validateFunctions() error {
	byName := map[string]*FunctionDecl{}
	for _, f := range p.Functions {
		key := strings.ToLower(f.Name)
		if byName[key] != nil {
			return fmt.Errorf("ddlog: line %d: function %s declared twice", f.Line, f.Name)
		}
		byName[key] = f
		if f.Implementation == "" {
			return fmt.Errorf("ddlog: line %d: function %s has no implementation", f.Line, f.Name)
		}
		// Resolve "returns rows like Rel".
		if len(f.Out) == 1 && strings.HasPrefix(f.Out[0].Name, "@like:") {
			relName := strings.TrimPrefix(f.Out[0].Name, "@like:")
			rel, ok := p.Relation(relName)
			if !ok {
				return fmt.Errorf("ddlog: line %d: function %s returns rows like unknown relation %s", f.Line, f.Name, relName)
			}
			f.Out = nil
			for _, c := range rel.Cols {
				f.Out = append(f.Out, ColDecl{Name: c.Name, Type: c.Type})
			}
		}
	}
	for _, a := range p.Apps {
		fn := byName[strings.ToLower(a.Fn)]
		if fn == nil {
			return fmt.Errorf("ddlog: line %d: application of undeclared function %s", a.Line, a.Fn)
		}
		if len(a.Args) != len(fn.In) {
			return fmt.Errorf("ddlog: line %d: function %s takes %d arguments, got %d", a.Line, a.Fn, len(fn.In), len(a.Args))
		}
		target, ok := p.Relation(a.Target)
		if !ok {
			return fmt.Errorf("ddlog: line %d: function application targets unknown relation %s", a.Line, a.Target)
		}
		if len(target.Cols) != len(fn.Out) {
			return fmt.Errorf("ddlog: line %d: function %s returns %d columns but %s has %d",
				a.Line, a.Fn, len(fn.Out), a.Target, len(target.Cols))
		}
	}
	return nil
}

// boundVars collects variables bound by body atoms, checking relation
// references and arity along the way.
func (p *Program) boundVars(body []Atom) (map[string]bool, error) {
	bound := map[string]bool{}
	for _, a := range body {
		rel, ok := p.Relation(a.Rel)
		if !ok {
			return nil, fmt.Errorf("ddlog: line %d: unknown relation %s in body", a.Line, a.Rel)
		}
		if len(a.Terms) != len(rel.Cols) {
			return nil, fmt.Errorf("ddlog: line %d: %s has %d columns, atom has %d terms",
				a.Line, rel.Name, len(rel.Cols), len(a.Terms))
		}
		for _, t := range a.Terms {
			if t.Kind == TermVar {
				bound[strings.ToLower(t.Var)] = true
			}
		}
	}
	return bound, nil
}

func (p *Program) checkHeadAtom(a Atom, bound map[string]bool, what string) error {
	rel, ok := p.Relation(a.Rel)
	if !ok {
		return fmt.Errorf("ddlog: line %d: unknown relation %s in %s head", a.Line, a.Rel, what)
	}
	if !rel.IsVariable {
		return fmt.Errorf("ddlog: line %d: %s head %s must be a variable relation", a.Line, what, a.Rel)
	}
	if len(a.Terms) != len(rel.Cols) {
		return fmt.Errorf("ddlog: line %d: %s has %d columns, head atom has %d terms",
			a.Line, rel.Name, len(rel.Cols), len(a.Terms))
	}
	for _, t := range a.Terms {
		switch t.Kind {
		case TermVar:
			if !bound[strings.ToLower(t.Var)] {
				return fmt.Errorf("ddlog: line %d: head variable %s is not bound in the body (unsafe rule)", a.Line, t.Var)
			}
		case TermWildcard:
			return fmt.Errorf("ddlog: line %d: wildcards are not allowed in rule heads", a.Line)
		}
	}
	return nil
}

// resolveCondExpr checks a condition expression and substitutes declared
// constants for free identifiers. It returns the (possibly rewritten)
// expression and whether it is boolean-valued.
func (p *Program) resolveCondExpr(e CondExpr, bound map[string]bool, line int) (CondExpr, bool, error) {
	if e.Kind == CondTermExpr {
		if e.Term.Kind == TermVar {
			name := strings.ToLower(e.Term.Var)
			if bound[name] {
				return e, false, nil
			}
			if v, ok := p.Const(e.Term.Var); ok {
				return CondExpr{Kind: CondTermExpr, Term: Term{Kind: TermConst, Const: v}}, v.Kind == storage.KindBool, nil
			}
			return e, false, fmt.Errorf("ddlog: line %d: %s is neither a bound variable nor a declared constant", line, e.Term.Var)
		}
		return e, e.Term.Kind == TermConst && e.Term.Const.Kind == storage.KindBool, nil
	}
	spec, ok := spatialPredicates[e.Call]
	if !ok {
		return e, false, fmt.Errorf("ddlog: line %d: unknown predicate %s in condition", line, e.Call)
	}
	if len(e.Args) < spec.minArity || len(e.Args) > spec.maxArity {
		return e, false, fmt.Errorf("ddlog: line %d: %s takes %d..%d arguments, got %d",
			line, e.Call, spec.minArity, spec.maxArity, len(e.Args))
	}
	out := CondExpr{Kind: CondCallExpr, Call: e.Call, Args: make([]CondExpr, len(e.Args))}
	for i, a := range e.Args {
		ra, _, err := p.resolveCondExpr(a, bound, line)
		if err != nil {
			return e, false, err
		}
		out.Args[i] = ra
	}
	return out, spec.boolean, nil
}

func (p *Program) resolveConds(conds []Cond, bound map[string]bool) error {
	for i := range conds {
		c := &conds[i]
		l, lBool, err := p.resolveCondExpr(c.L, bound, c.Line)
		if err != nil {
			return err
		}
		c.L = l
		if c.Op == CondTrue {
			if c.L.Kind == CondCallExpr && !lBool {
				return fmt.Errorf("ddlog: line %d: %s yields a value and must be compared (e.g. %s < 150)",
					c.Line, c.L.Call, c.L.String())
			}
			continue
		}
		r, _, err := p.resolveCondExpr(c.R, bound, c.Line)
		if err != nil {
			return err
		}
		c.R = r
	}
	return nil
}

func (p *Program) validateDerivation(d *DerivationRule) error {
	bound, err := p.boundVars(d.Body)
	if err != nil {
		return err
	}
	if err := p.checkHeadAtom(d.Head, bound, "derivation"); err != nil {
		return err
	}
	if d.LabelTerm.Kind == TermVar && !bound[strings.ToLower(d.LabelTerm.Var)] {
		return fmt.Errorf("ddlog: line %d: derivation label variable %s is not bound in the body", d.Line, d.LabelTerm.Var)
	}
	return p.resolveConds(d.Conds, bound)
}

func (p *Program) validateInference(r *InferenceRule) error {
	bound, err := p.boundVars(r.Body)
	if err != nil {
		return err
	}
	if len(r.Head) == 0 {
		return fmt.Errorf("ddlog: line %d: inference rule has no head", r.Line)
	}
	if r.Connective == ConnSingle && len(r.Head) != 1 {
		return fmt.Errorf("ddlog: line %d: internal: multi-atom head without connective", r.Line)
	}
	if r.Connective == ConnImply && len(r.Head) != 2 {
		return fmt.Errorf("ddlog: line %d: '=>' takes exactly two head atoms", r.Line)
	}
	for _, h := range r.Head {
		if err := p.checkHeadAtom(h.Atom, bound, "inference"); err != nil {
			return err
		}
	}
	return p.resolveConds(r.Conds, bound)
}

func (p *Program) validateApp(a *FunctionApp) error {
	bound, err := p.boundVars(a.Body)
	if err != nil {
		return err
	}
	for _, t := range a.Args {
		if t.Kind == TermVar && !bound[strings.ToLower(t.Var)] {
			return fmt.Errorf("ddlog: line %d: function argument %s is not bound in the body", a.Line, t.Var)
		}
		if t.Kind == TermWildcard {
			return fmt.Errorf("ddlog: line %d: wildcards are not allowed as function arguments", a.Line)
		}
	}
	return p.resolveConds(a.Conds, bound)
}
