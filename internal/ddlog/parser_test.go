package ddlog

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/storage"
)

// The paper's Figure 3 program (EbolaKB), verbatim up to the liberia_geom
// constant, which we declare explicitly.
const ebolaProgram = `
const liberia_geom = 'POLYGON((-12 4, -7 4, -7 9, -12 9))'.

#Schema Declaration
S1: County (id bigint, location point, hasLowSanitation bool).
@spatial(exp)
S2: HasEbola? (id bigint, location point).

#Derivation Rule
D1: HasEbola(C1, L1) = NULL :- County(C1, L1, _).

#Inference Rule
R1: @weight(0.35)
HasEbola(C1, L1) => HasEbola(C2, L2) :-
    County(C1, L1, _), County(C2, L2, S2)
    [distance(L1, L2) < 150, within(liberia_geom, L1), S2 = true].
`

// The paper's Figure 7 Sya-syntax GWDB rule.
const gwdbProgram = `
Well (id bigint, location point, arsenic_ratio double).
@spatial(exp)
IsSafe? (id bigint, location point).

D1: IsSafe(W, L) = NULL :- Well(W, L, _).

@weight(0.7)
R1: IsSafe(W1, L1) => IsSafe(W2, L2) :-
    Well(W1, L1, R1), Well(W2, L2, R2)
    [distance(L1, L2) < 50, R1 < 0.2, R2 < 0.2].
`

func mustProgram(t *testing.T, src string) *Program {
	t.Helper()
	p, err := ParseAndValidate(src)
	if err != nil {
		t.Fatalf("ParseAndValidate: %v", err)
	}
	return p
}

func TestParseEbolaProgram(t *testing.T) {
	p := mustProgram(t, ebolaProgram)
	if len(p.Relations) != 2 || len(p.Derivations) != 1 || len(p.Rules) != 1 || len(p.Consts) != 1 {
		t.Fatalf("counts: rel=%d der=%d rules=%d consts=%d",
			len(p.Relations), len(p.Derivations), len(p.Rules), len(p.Consts))
	}
	county, ok := p.Relation("county")
	if !ok || county.IsVariable || county.Label != "S1" {
		t.Fatalf("County decl = %+v", county)
	}
	if county.Cols[1].Type.Kind != storage.KindGeom || county.Cols[1].Type.GeomType != geom.TypePoint {
		t.Errorf("County location type = %+v", county.Cols[1].Type)
	}
	hasEbola, _ := p.Relation("HasEbola")
	if !hasEbola.IsVariable || hasEbola.Spatial != "exp" {
		t.Fatalf("HasEbola decl = %+v", hasEbola)
	}
	if hasEbola.SpatialCol() != 1 {
		t.Errorf("spatial col = %d", hasEbola.SpatialCol())
	}
	d := p.Derivations[0]
	if d.Label != "D1" || d.Head.Rel != "HasEbola" || !d.LabelTerm.Const.IsNull() {
		t.Errorf("derivation = %+v", d)
	}
	if d.Body[0].Terms[2].Kind != TermWildcard {
		t.Errorf("wildcard not parsed: %+v", d.Body[0].Terms[2])
	}
	r := p.Rules[0]
	if r.Label != "R1" || !r.HasWeight || r.Weight != 0.35 {
		t.Errorf("rule weight = %+v", r)
	}
	if r.Connective != ConnImply || len(r.Head) != 2 {
		t.Errorf("rule head = %+v", r.Head)
	}
	if len(r.Body) != 2 || len(r.Conds) != 3 {
		t.Errorf("body=%d conds=%d", len(r.Body), len(r.Conds))
	}
	// distance(L1, L2) < 150
	c0 := r.Conds[0]
	if c0.Op != CondLt || c0.L.Call != "distance" || c0.R.Term.Const.I != 150 {
		t.Errorf("cond 0 = %+v", c0)
	}
	// within(liberia_geom, L1): the constant must have been substituted.
	c1 := r.Conds[1]
	if c1.Op != CondTrue || c1.L.Call != "within" {
		t.Fatalf("cond 1 = %+v", c1)
	}
	if c1.L.Args[0].Term.Kind != TermConst || c1.L.Args[0].Term.Const.Kind != storage.KindGeom {
		t.Errorf("liberia_geom not substituted: %+v", c1.L.Args[0])
	}
	// S2 = true
	c2 := r.Conds[2]
	if c2.Op != CondEq || c2.L.Term.Var != "S2" {
		t.Errorf("cond 2 = %+v", c2)
	}
	b, _ := c2.R.Term.Const.AsBool()
	if !b {
		t.Errorf("cond 2 RHS = %+v", c2.R)
	}
}

func TestParseGWDBProgram(t *testing.T) {
	p := mustProgram(t, gwdbProgram)
	r := p.Rules[0]
	if r.Weight != 0.7 {
		t.Errorf("weight = %v", r.Weight)
	}
	if len(r.Conds) != 3 {
		t.Fatalf("conds = %d", len(r.Conds))
	}
	if r.Conds[1].L.Term.Var != "R1" || r.Conds[1].Op != CondLt {
		t.Errorf("cond = %+v", r.Conds[1])
	}
	if f, _ := r.Conds[1].R.Term.Const.AsFloat(); f != 0.2 {
		t.Errorf("threshold = %+v", r.Conds[1].R)
	}
}

func TestParseCategorical(t *testing.T) {
	p := mustProgram(t, `
Data (id bigint, location point, level bigint).
@spatial(exp)
HasLevel? (id bigint, location point) categorical(10).
D1: HasLevel(I, L) = NULL :- Data(I, L, _).
`)
	rel, _ := p.Relation("HasLevel")
	if rel.Categorical != 10 {
		t.Errorf("categorical = %d", rel.Categorical)
	}
}

func TestParseFunctionAndApp(t *testing.T) {
	p := mustProgram(t, `
Documents (doc text).
Places (name text, location point).
function extract_places over (doc text) returns (name text, location point)
    implementation "geoner".
Places += extract_places(D) :- Documents(D).
`)
	if len(p.Functions) != 1 || len(p.Apps) != 1 {
		t.Fatalf("fn=%d apps=%d", len(p.Functions), len(p.Apps))
	}
	fn := p.Functions[0]
	if fn.Implementation != "geoner" || len(fn.In) != 1 || len(fn.Out) != 2 {
		t.Errorf("fn = %+v", fn)
	}
	app := p.Apps[0]
	if app.Target != "Places" || app.Fn != "extract_places" {
		t.Errorf("app = %+v", app)
	}
}

func TestParseDeepDiveStyleFunction(t *testing.T) {
	// Fig. 7 DeepDive syntax: returns rows like / handles tsj lines.
	p := mustProgram(t, `
Well (id bigint, loc_x double, loc_y double).
Distance (id1 bigint, id2 bigint, dist double).
function calc_distance over (id1 bigint, x1 double, y1 double, id2 bigint, x2 double, y2 double)
    returns rows like Distance
    implementation "calc_distance" handles tsj lines.
Distance += calc_distance(W1, X1, Y1, W2, X2, Y2) :-
    Well(W1, X1, Y1), Well(W2, X2, Y2).
`)
	fn := p.Functions[0]
	if len(fn.Out) != 3 || fn.Out[2].Name != "dist" {
		t.Errorf("rows-like expansion = %+v", fn.Out)
	}
}

func TestParseHeadConnectives(t *testing.T) {
	base := `
X? (s text).
Y? (s text).
Z (r text, s text).
`
	cases := []struct {
		head string
		conn HeadConnective
		n    int
	}{
		{`X(S) ^ Y(S)`, ConnAnd, 2},
		{`X(S) & Y(S)`, ConnAnd, 2},
		{`X(S) | Y(S)`, ConnOr, 2},
		{`X(S) => Y(S)`, ConnImply, 2},
		{`X(S)`, ConnSingle, 1},
		{`!X(S) | Y(S)`, ConnOr, 2},
	}
	for _, c := range cases {
		src := base + "@weight(0.7) R1: " + c.head + ` :- Z(R, S) [R = 'a'].`
		p := mustProgram(t, src)
		r := p.Rules[0]
		if r.Connective != c.conn || len(r.Head) != c.n {
			t.Errorf("head %q: conn=%v n=%d", c.head, r.Connective, len(r.Head))
		}
	}
	// Negation flag.
	p := mustProgram(t, base+`@weight(1) R: !X(S) | Y(S) :- Z(_, S).`)
	if !p.Rules[0].Head[0].Negated || p.Rules[0].Head[1].Negated {
		t.Error("negation flags wrong")
	}
}

func TestParseDerivationWithLabelVariable(t *testing.T) {
	p := mustProgram(t, `
Obs (id bigint, location point, safe bool).
IsSafe? (id bigint, location point).
D1: IsSafe(I, L) = S :- Obs(I, L, S).
`)
	d := p.Derivations[0]
	if d.LabelTerm.Kind != TermVar || d.LabelTerm.Var != "S" {
		t.Errorf("label term = %+v", d.LabelTerm)
	}
}

func TestParseComments(t *testing.T) {
	mustProgram(t, `
# hash comment
// slash comment
T (id bigint). # trailing
V? (id bigint).
D: V(I) = NULL :- T(I).
`)
}

func TestNegativeNumbersVsWildcards(t *testing.T) {
	p := mustProgram(t, `
T (id bigint, v double).
V? (id bigint).
D: V(I) = NULL :- T(I, -) .
R: @weight(-0.5) V(I) :- T(I, X) [X > -1.5].
`)
	if p.Derivations[0].Body[0].Terms[1].Kind != TermWildcard {
		t.Error("- should be wildcard in atom args")
	}
	if p.Rules[0].Weight != -0.5 {
		t.Errorf("negative weight = %v", p.Rules[0].Weight)
	}
	c := p.Rules[0].Conds[0]
	if f, _ := c.R.Term.Const.AsFloat(); f != -1.5 {
		t.Errorf("negative literal = %+v", c.R)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"T (id bigint%).", `T (id bigint, s text). V? (id bigint). D: V(I) = 'oops :- T(I).`} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no relations", `const x = 1.`, "no relations"},
		{"dup relation", "T (id bigint).\nT (id bigint).", "declared twice"},
		{"dup column", `T (id bigint, ID text).`, "duplicate column"},
		{"spatial on typical", "@spatial(exp)\nT (id bigint, location point).", "variable relations"},
		{"spatial without geom", "@spatial(exp)\nV? (id bigint).", "spatial attribute"},
		{"categorical on typical", `T (id bigint) categorical(3).`, "variable relations"},
		{"categorical too small", `V? (id bigint) categorical(1).`, "at least 2"},
		{"unknown body relation", "V? (id bigint).\nD: V(I) = NULL :- Missing(I).", "unknown relation"},
		{"arity mismatch body", "T (id bigint, v double).\nV? (id bigint).\nD: V(I) = NULL :- T(I).", "columns"},
		{"head not variable rel", "T (id bigint).\nU (id bigint).\nD: U(I) = NULL :- T(I).", "variable relation"},
		{"unsafe head var", "T (id bigint).\nV? (id bigint).\nD: V(J) = NULL :- T(I).", "not bound"},
		{"unbound label var", "T (id bigint).\nV? (id bigint).\nD: V(I) = S :- T(I).", "not bound"},
		{"unknown cond name", "T (id bigint).\nV? (id bigint).\nD: V(I) = NULL :- T(I) [X = 1].", "neither a bound variable"},
		{"unknown predicate", "T (id bigint, location point).\nV? (id bigint).\nD: V(I) = NULL :- T(I, L) [near(L, L)].", "unknown predicate"},
		{"distance bare", "T (id bigint, location point).\nV? (id bigint).\nD: V(I) = NULL :- T(I, L) [distance(L, L)].", "must be compared"},
		{"predicate arity", "T (id bigint, location point).\nV? (id bigint).\nD: V(I) = NULL :- T(I, L) [within(L)].", "arguments"},
		{"imply arity", "T (id bigint).\nV? (id bigint).\nR: @weight(1) V(I) => V(I) => V(I) :- T(I).", "'=>'"},
		{"dup const", "const a = 1.\nconst a = 2.\nT (id bigint).", "declared twice"},
		{"const shadows relation", "T (id bigint).\nconst T = 1.", "shadows"},
		{"undeclared function", "T (id bigint).\nU (id bigint).\nU += f(I) :- T(I).", "undeclared function"},
		{"fn arg count", "T (id bigint).\nU (id bigint).\nfunction f over (a bigint, b bigint) returns (c bigint) implementation \"x\".\nU += f(I) :- T(I).", "arguments"},
		{"fn out arity", "T (id bigint).\nU (id bigint, v bigint).\nfunction f over (a bigint) returns (c bigint) implementation \"x\".\nU += f(I) :- T(I).", "columns"},
		{"rows like unknown", "T (id bigint).\nfunction f over (a bigint) returns rows like Nope implementation \"x\".", "unknown relation"},
		{"wildcard in head", "T (id bigint).\nV? (id bigint).\nD: V(_) = NULL :- T(I).", "wildcard"},
	}
	for _, c := range cases {
		_, err := ParseAndValidate(c.src)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"T (id bigint)",               // missing dot
		"@unknown(1)\nT (id bigint).", // unknown annotation
		"@weight(x)\nT (id bigint).",  // non-numeric weight
		"@weight(1) @weight(2)\nV? (id bigint).",
		"@spatial(exp) @spatial(exp)\nV? (id bigint, location point).",
		"V? (id bigint).\nD: V(I) = NULL :- .",
		"V? (id bigint).\nD: V(I) = _ :- V(I).",
		"const x.",
		"function f over (a bigint).",
		"V? (id bigint).\nR: V(I) ^ V(I) | V(I) :- V(I).", // mixed connectives
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			if _, verr := ParseAndValidate(src); verr == nil {
				t.Errorf("Parse(%q) should fail", src)
			}
		}
	}
}

func TestConstWKTParsing(t *testing.T) {
	p := mustProgram(t, `
const region = 'POLYGON((0 0, 10 0, 10 10, 0 10))'.
const label = 'not wkt'.
const n = 42.
T (id bigint).
`)
	if v, _ := p.Const("region"); v.Kind != storage.KindGeom {
		t.Errorf("region kind = %v", v.Kind)
	}
	if v, _ := p.Const("label"); v.Kind != storage.KindString {
		t.Errorf("label kind = %v", v.Kind)
	}
	if v, _ := p.Const("N"); v.I != 42 { // case-insensitive
		t.Errorf("n = %v", v)
	}
	if _, ok := p.Const("missing"); ok {
		t.Error("missing const found")
	}
}

func TestVariableRelationsHelper(t *testing.T) {
	p := mustProgram(t, `
T (id bigint).
A? (id bigint).
B? (id bigint).
`)
	vars := p.VariableRelations()
	if len(vars) != 2 || vars[0].Name != "A" || vars[1].Name != "B" {
		t.Errorf("variable relations = %+v", vars)
	}
}

func TestLearnedWeightMarker(t *testing.T) {
	p := mustProgram(t, `
T (id bigint).
V? (id bigint).
R1: @weight(?) V(I) :- T(I).
R2: @weight(0.5) V(I) :- T(I).
`)
	if !p.Rules[0].LearnedWeight || p.Rules[0].Weight != 0 {
		t.Errorf("R1 = %+v", p.Rules[0])
	}
	if p.Rules[1].LearnedWeight {
		t.Error("R2 should be fixed")
	}
	if _, err := Parse(`T (id bigint). V? (id bigint). R: @weight(? V(I) :- T(I).`); err == nil {
		t.Error("malformed @weight(?) should fail")
	}
}

func TestStringRenderings(t *testing.T) {
	p := mustProgram(t, `
T (id bigint, location point, tag text).
V? (id bigint).
R: @weight(1) V(I) :- T(I, L, 'x') [distance(L, L) < 5, within(L, L)].
`)
	r := p.Rules[0]
	if got := r.Body[0].String(); got != "T(I, L, 'x')" {
		t.Errorf("atom string = %q", got)
	}
	if got := r.Conds[0].String(); got != "distance(L, L) < 5" {
		t.Errorf("cond string = %q", got)
	}
	if got := r.Conds[1].String(); got != "within(L, L)" {
		t.Errorf("bare cond string = %q", got)
	}
	if ct, _ := ParseColType("point"); ct.String() != "point" {
		t.Error("point type string")
	}
	for _, name := range []string{"bigint", "double", "bool", "text"} {
		ct, ok := ParseColType(name)
		if !ok || ct.String() != name {
			t.Errorf("type %q round trip: %v %q", name, ok, ct.String())
		}
	}
	wild := Term{Kind: TermWildcard}
	if wild.String() != "_" {
		t.Error("wildcard string")
	}
}
