package ddlog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/storage"
)

// Parse parses a DDlog program. The result is syntactically checked only;
// call Validate for semantic checks (or ParseAndValidate for both).
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tEOF) {
		if err := p.parseStatement(prog); err != nil {
			return nil, err
		}
	}
	if err := prog.indexRelations(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseAndValidate parses and semantically validates a program.
func ParseAndValidate(src string) (*Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []tok
	i    int
}

func (p *parser) peek() tok         { return p.toks[p.i] }
func (p *parser) at(k tokKind) bool { return p.peek().kind == k }

func (p *parser) peekAhead(n int) tok {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+n]
}

func (p *parser) advance() tok {
	t := p.toks[p.i]
	if t.kind != tEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (tok, error) {
	if !p.at(k) {
		return tok{}, fmt.Errorf("ddlog: expected %s, got %s", what, p.peek())
	}
	return p.advance(), nil
}

func (p *parser) atIdent(word string) bool {
	t := p.peek()
	return t.kind == tIdent && strings.EqualFold(t.text, word)
}

// annotations collected while scanning a statement prefix.
type annotations struct {
	spatial   string
	weight    float64
	hasWeight bool
	hasSpat   bool
	learned   bool
}

func (p *parser) parseAnnotation(ann *annotations) error {
	p.advance() // '@'
	name, err := p.expect(tIdent, "annotation name")
	if err != nil {
		return err
	}
	switch strings.ToLower(name.text) {
	case "spatial":
		if _, err := p.expect(tLParen, "("); err != nil {
			return err
		}
		fn, err := p.expect(tIdent, "weighing function name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tRParen, ")"); err != nil {
			return err
		}
		if ann.hasSpat {
			return fmt.Errorf("ddlog: line %d: duplicate @spatial annotation", name.line)
		}
		ann.spatial = strings.ToLower(fn.text)
		ann.hasSpat = true
	case "weight":
		if _, err := p.expect(tLParen, "("); err != nil {
			return err
		}
		if ann.hasWeight {
			return fmt.Errorf("ddlog: line %d: duplicate @weight annotation", name.line)
		}
		// @weight(?) declares a learned weight (fit from evidence by the
		// weight learner); a literal fixes it.
		if p.at(tQuestion) {
			p.advance()
			if _, err := p.expect(tRParen, ")"); err != nil {
				return err
			}
			ann.weight = 0
			ann.hasWeight = true
			ann.learned = true
			return nil
		}
		neg := false
		if p.at(tDash) {
			p.advance()
			neg = true
		}
		num, err := p.expect(tNumber, "weight value")
		if err != nil {
			return err
		}
		w, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			return fmt.Errorf("ddlog: line %d: bad weight %q", num.line, num.text)
		}
		if neg {
			w = -w
		}
		if _, err := p.expect(tRParen, ")"); err != nil {
			return err
		}
		ann.weight = w
		ann.hasWeight = true
	default:
		return fmt.Errorf("ddlog: line %d: unknown annotation @%s", name.line, name.text)
	}
	return nil
}

func (p *parser) parseStatement(prog *Program) error {
	var ann annotations
	label := ""
	// Annotations and an optional label may precede the statement core, in
	// either order (the paper writes both "@weight(0.7)\nR1: ..." and
	// "R1: @weight(0.35) ...").
	for {
		switch {
		case p.at(tAt):
			if err := p.parseAnnotation(&ann); err != nil {
				return err
			}
			continue
		case p.at(tIdent) && p.peekAhead(1).kind == tColon:
			if label != "" {
				return fmt.Errorf("ddlog: duplicate statement label at %s", p.peek())
			}
			label = p.advance().text
			p.advance() // ':'
			continue
		}
		break
	}
	switch {
	case p.atIdent("const"):
		return p.parseConst(prog, label, ann)
	case p.atIdent("function"):
		return p.parseFunction(prog, label, ann)
	case p.at(tBang):
		return p.parseRule(prog, label, ann)
	case p.at(tIdent):
		return p.parseRelStatement(prog, label, ann)
	default:
		return fmt.Errorf("ddlog: expected a declaration or rule, got %s", p.peek())
	}
}

func (p *parser) parseConst(prog *Program, label string, ann annotations) error {
	if ann.hasSpat || ann.hasWeight {
		return fmt.Errorf("ddlog: const declarations take no annotations")
	}
	_ = label
	kw := p.advance() // const
	name, err := p.expect(tIdent, "constant name")
	if err != nil {
		return err
	}
	if _, err := p.expect(tEq, "="); err != nil {
		return err
	}
	val, err := p.parseConstValue()
	if err != nil {
		return err
	}
	if _, err := p.expect(tDot, "'.'"); err != nil {
		return err
	}
	prog.Consts = append(prog.Consts, &ConstDecl{Name: name.text, Value: val, Line: kw.line})
	return nil
}

// parseConstValue parses a literal; WKT strings become geometries.
func (p *parser) parseConstValue() (storage.Value, error) {
	t := p.peek()
	switch t.kind {
	case tNumber:
		p.advance()
		return parseNumber(t)
	case tDash:
		p.advance()
		num, err := p.expect(tNumber, "number after '-'")
		if err != nil {
			return storage.Null, err
		}
		v, err := parseNumber(num)
		if err != nil {
			return storage.Null, err
		}
		if v.Kind == storage.KindInt {
			return storage.Int(-v.I), nil
		}
		return storage.Float(-v.F), nil
	case tString:
		p.advance()
		if g, err := geom.ParseWKT(t.text); err == nil {
			return storage.Geom(g), nil
		}
		return storage.Str(t.text), nil
	case tIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.advance()
			return storage.Bool(true), nil
		case "false":
			p.advance()
			return storage.Bool(false), nil
		case "null":
			p.advance()
			return storage.Null, nil
		}
	}
	return storage.Null, fmt.Errorf("ddlog: expected a literal, got %s", t)
}

func parseNumber(t tok) (storage.Value, error) {
	if strings.ContainsAny(t.text, ".eE") {
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return storage.Null, fmt.Errorf("ddlog: line %d: bad number %q", t.line, t.text)
		}
		return storage.Float(f), nil
	}
	i, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return storage.Null, fmt.Errorf("ddlog: line %d: bad number %q", t.line, t.text)
	}
	return storage.Int(i), nil
}

func (p *parser) parseFunction(prog *Program, label string, ann annotations) error {
	if ann.hasSpat || ann.hasWeight {
		return fmt.Errorf("ddlog: function declarations take no annotations")
	}
	kw := p.advance() // function
	name, err := p.expect(tIdent, "function name")
	if err != nil {
		return err
	}
	fn := &FunctionDecl{Label: label, Name: name.text, Line: kw.line}
	if !p.atIdent("over") {
		return fmt.Errorf("ddlog: expected OVER, got %s", p.peek())
	}
	p.advance()
	fn.In, err = p.parseColList()
	if err != nil {
		return err
	}
	if !p.atIdent("returns") {
		return fmt.Errorf("ddlog: expected RETURNS, got %s", p.peek())
	}
	p.advance()
	// Accept both "returns (cols)" and DeepDive's "returns rows like Rel".
	if p.atIdent("rows") {
		p.advance()
		if !p.atIdent("like") {
			return fmt.Errorf("ddlog: expected LIKE, got %s", p.peek())
		}
		p.advance()
		rel, err := p.expect(tIdent, "relation name")
		if err != nil {
			return err
		}
		// Columns are resolved against the relation during validation; mark
		// with a sentinel column.
		fn.Out = []ColDecl{{Name: "@like:" + rel.text}}
	} else {
		fn.Out, err = p.parseColList()
		if err != nil {
			return err
		}
	}
	if !p.atIdent("implementation") {
		return fmt.Errorf("ddlog: expected IMPLEMENTATION, got %s", p.peek())
	}
	p.advance()
	impl, err := p.expect(tString, "implementation key")
	if err != nil {
		return err
	}
	fn.Implementation = impl.text
	// Tolerate DeepDive's trailing "handles tsj lines".
	if p.atIdent("handles") {
		p.advance()
		for p.at(tIdent) {
			p.advance()
		}
	}
	if _, err := p.expect(tDot, "'.'"); err != nil {
		return err
	}
	prog.Functions = append(prog.Functions, fn)
	return nil
}

func (p *parser) parseColList() ([]ColDecl, error) {
	if _, err := p.expect(tLParen, "("); err != nil {
		return nil, err
	}
	var cols []ColDecl
	for {
		name, err := p.expect(tIdent, "column name")
		if err != nil {
			return nil, err
		}
		typ, err := p.expect(tIdent, "column type")
		if err != nil {
			return nil, err
		}
		ct, ok := ParseColType(typ.text)
		if !ok {
			return nil, fmt.Errorf("ddlog: line %d: unknown type %q", typ.line, typ.text)
		}
		cols = append(cols, ColDecl{Name: name.text, Type: ct})
		if p.at(tComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tRParen, ")"); err != nil {
		return nil, err
	}
	return cols, nil
}

// parseRelStatement disambiguates between a relation declaration, a
// derivation rule, an inference rule, and a function application, all of
// which start with an identifier.
func (p *parser) parseRelStatement(prog *Program, label string, ann annotations) error {
	// Function application: IDENT += fn(args) :- body.
	if p.peekAhead(1).kind == tPlusEq {
		return p.parseFunctionApp(prog, label, ann)
	}
	if p.looksLikeDecl() {
		return p.parseRelationDecl(prog, label, ann)
	}
	return p.parseRule(prog, label, ann)
}

// looksLikeDecl reports whether the upcoming IDENT [?] ( ... ) is a schema
// declaration: the first parenthesized element is two identifiers where the
// second is a type keyword.
func (p *parser) looksLikeDecl() bool {
	j := p.i + 1 // past relation name
	if p.peekAhead(1).kind == tQuestion {
		j++
	}
	if j >= len(p.toks) || p.toks[j].kind != tLParen {
		return false
	}
	j++
	if j+1 >= len(p.toks) {
		return false
	}
	if p.toks[j].kind != tIdent || p.toks[j+1].kind != tIdent {
		return false
	}
	_, ok := ParseColType(p.toks[j+1].text)
	return ok
}

func (p *parser) parseRelationDecl(prog *Program, label string, ann annotations) error {
	name := p.advance()
	decl := &RelationDecl{Label: label, Name: name.text, Line: name.line}
	if p.at(tQuestion) {
		p.advance()
		decl.IsVariable = true
	}
	cols, err := p.parseColList()
	if err != nil {
		return err
	}
	for _, c := range cols {
		decl.Cols = append(decl.Cols, c)
	}
	if p.atIdent("categorical") {
		p.advance()
		if _, err := p.expect(tLParen, "("); err != nil {
			return err
		}
		num, err := p.expect(tNumber, "domain size")
		if err != nil {
			return err
		}
		h, err := strconv.Atoi(num.text)
		if err != nil {
			return fmt.Errorf("ddlog: line %d: bad categorical size %q", num.line, num.text)
		}
		decl.Categorical = h
		if _, err := p.expect(tRParen, ")"); err != nil {
			return err
		}
	}
	if _, err := p.expect(tDot, "'.'"); err != nil {
		return err
	}
	if ann.hasWeight {
		return fmt.Errorf("ddlog: line %d: @weight does not apply to relation declarations", name.line)
	}
	decl.Spatial = ann.spatial
	prog.Relations = append(prog.Relations, decl)
	return nil
}

func (p *parser) parseFunctionApp(prog *Program, label string, ann annotations) error {
	if ann.hasSpat || ann.hasWeight {
		return fmt.Errorf("ddlog: function applications take no annotations")
	}
	target := p.advance()
	p.advance() // +=
	fnName, err := p.expect(tIdent, "function name")
	if err != nil {
		return err
	}
	app := &FunctionApp{Label: label, Target: target.text, Fn: fnName.text, Line: target.line}
	if _, err := p.expect(tLParen, "("); err != nil {
		return err
	}
	if !p.at(tRParen) {
		for {
			t, err := p.parseTerm()
			if err != nil {
				return err
			}
			app.Args = append(app.Args, t)
			if p.at(tComma) {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tRParen, ")"); err != nil {
		return err
	}
	if _, err := p.expect(tTurnstile, "':-'"); err != nil {
		return err
	}
	app.Body, app.Conds, err = p.parseBody()
	if err != nil {
		return err
	}
	if _, err := p.expect(tDot, "'.'"); err != nil {
		return err
	}
	prog.Apps = append(prog.Apps, app)
	return nil
}

// parseRule parses a derivation or inference rule.
func (p *parser) parseRule(prog *Program, label string, ann annotations) error {
	if ann.hasSpat {
		return fmt.Errorf("ddlog: @spatial does not apply to rules")
	}
	first, neg, err := p.parseHeadAtom()
	if err != nil {
		return err
	}
	switch {
	case p.at(tEq) && !neg:
		// Derivation rule: Head(args) = labelterm :- body.
		p.advance()
		lt, err := p.parseTerm()
		if err != nil {
			return err
		}
		if lt.Kind == TermWildcard {
			return fmt.Errorf("ddlog: line %d: derivation label cannot be a wildcard", first.Line)
		}
		if _, err := p.expect(tTurnstile, "':-'"); err != nil {
			return err
		}
		d := &DerivationRule{Label: label, Head: first, LabelTerm: lt, Line: first.Line}
		d.Body, d.Conds, err = p.parseBody()
		if err != nil {
			return err
		}
		if _, err := p.expect(tDot, "'.'"); err != nil {
			return err
		}
		if ann.hasWeight {
			return fmt.Errorf("ddlog: line %d: @weight does not apply to derivation rules", first.Line)
		}
		prog.Derivations = append(prog.Derivations, d)
		return nil
	default:
		rule := &InferenceRule{
			Label:         label,
			Weight:        ann.weight,
			HasWeight:     ann.hasWeight,
			LearnedWeight: ann.learned,
			Head:          []HeadAtom{{Atom: first, Negated: neg}},
			Line:          first.Line,
		}
		if !rule.HasWeight {
			rule.Weight = 1
		}
		conn := ConnSingle
		for {
			var c HeadConnective
			switch p.peek().kind {
			case tImplies:
				c = ConnImply
			case tCaret, tAmp:
				c = ConnAnd
			case tPipe:
				c = ConnOr
			default:
				goto headDone
			}
			if conn != ConnSingle && conn != c {
				return fmt.Errorf("ddlog: line %d: mixed head connectives are not supported", p.peek().line)
			}
			if c == ConnImply && len(rule.Head) >= 2 {
				return fmt.Errorf("ddlog: line %d: chained '=>' heads are not supported", p.peek().line)
			}
			conn = c
			p.advance()
			atom, negated, err := p.parseHeadAtom()
			if err != nil {
				return err
			}
			rule.Head = append(rule.Head, HeadAtom{Atom: atom, Negated: negated})
		}
	headDone:
		rule.Connective = conn
		if _, err := p.expect(tTurnstile, "':-'"); err != nil {
			return err
		}
		var perr error
		rule.Body, rule.Conds, perr = p.parseBody()
		if perr != nil {
			return perr
		}
		if _, err := p.expect(tDot, "'.'"); err != nil {
			return err
		}
		prog.Rules = append(prog.Rules, rule)
		return nil
	}
}

func (p *parser) parseHeadAtom() (Atom, bool, error) {
	neg := false
	if p.at(tBang) {
		p.advance()
		neg = true
	}
	a, err := p.parseAtom()
	return a, neg, err
}

func (p *parser) parseAtom() (Atom, error) {
	name, err := p.expect(tIdent, "relation name")
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Rel: name.text, Line: name.line}
	if _, err := p.expect(tLParen, "("); err != nil {
		return Atom{}, err
	}
	if !p.at(tRParen) {
		for {
			t, err := p.parseTerm()
			if err != nil {
				return Atom{}, err
			}
			a.Terms = append(a.Terms, t)
			if p.at(tComma) {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tRParen, ")"); err != nil {
		return Atom{}, err
	}
	return a, nil
}

func (p *parser) parseTerm() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tUnder:
		p.advance()
		return Term{Kind: TermWildcard}, nil
	case tDash:
		// '-' alone is a wildcard (the paper's don't-care); '-NUMBER' is a
		// negative constant.
		if p.peekAhead(1).kind == tNumber {
			p.advance()
			num := p.advance()
			v, err := parseNumber(num)
			if err != nil {
				return Term{}, err
			}
			if v.Kind == storage.KindInt {
				return Term{Kind: TermConst, Const: storage.Int(-v.I)}, nil
			}
			return Term{Kind: TermConst, Const: storage.Float(-v.F)}, nil
		}
		p.advance()
		return Term{Kind: TermWildcard}, nil
	case tNumber:
		p.advance()
		v, err := parseNumber(t)
		if err != nil {
			return Term{}, err
		}
		return Term{Kind: TermConst, Const: v}, nil
	case tString:
		p.advance()
		return Term{Kind: TermConst, Const: storage.Str(t.text)}, nil
	case tIdent:
		switch strings.ToLower(t.text) {
		case "null":
			p.advance()
			return Term{Kind: TermConst, Const: storage.Null}, nil
		case "true":
			p.advance()
			return Term{Kind: TermConst, Const: storage.Bool(true)}, nil
		case "false":
			p.advance()
			return Term{Kind: TermConst, Const: storage.Bool(false)}, nil
		}
		p.advance()
		return Term{Kind: TermVar, Var: t.text}, nil
	default:
		return Term{}, fmt.Errorf("ddlog: expected a term, got %s", t)
	}
}

// parseBody parses comma-separated atoms with optional bracketed condition
// groups (which may follow any atom; all conditions are merged).
func (p *parser) parseBody() ([]Atom, []Cond, error) {
	var atoms []Atom
	var conds []Cond
	for {
		if p.at(tLBracket) {
			cs, err := p.parseCondGroup()
			if err != nil {
				return nil, nil, err
			}
			conds = append(conds, cs...)
		} else {
			a, err := p.parseAtom()
			if err != nil {
				return nil, nil, err
			}
			atoms = append(atoms, a)
		}
		if p.at(tComma) {
			p.advance()
			continue
		}
		// A bracket group may directly follow the last atom without a comma
		// (paper Fig. 3 style: "County(C2, L2, S2) [distance(...) < 150]").
		if p.at(tLBracket) {
			continue
		}
		break
	}
	if len(atoms) == 0 {
		return nil, nil, fmt.Errorf("ddlog: rule body needs at least one atom near %s", p.peek())
	}
	return atoms, conds, nil
}

func (p *parser) parseCondGroup() ([]Cond, error) {
	p.advance() // '['
	var out []Cond
	for {
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if p.at(tComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tRBracket, "']'"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseCond() (Cond, error) {
	line := p.peek().line
	l, err := p.parseCondExpr()
	if err != nil {
		return Cond{}, err
	}
	var op CondOp
	switch p.peek().kind {
	case tEq:
		op = CondEq
	case tNe:
		op = CondNe
	case tLt:
		op = CondLt
	case tLe:
		op = CondLe
	case tGt:
		op = CondGt
	case tGe:
		op = CondGe
	default:
		return Cond{Op: CondTrue, L: l, Line: line}, nil
	}
	p.advance()
	r, err := p.parseCondExpr()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Op: op, L: l, R: r, Line: line}, nil
}

func (p *parser) parseCondExpr() (CondExpr, error) {
	t := p.peek()
	if t.kind == tIdent && p.peekAhead(1).kind == tLParen {
		switch strings.ToLower(t.text) {
		case "null", "true", "false":
			// literals, not calls
		default:
			p.advance()
			p.advance() // '('
			call := CondExpr{Kind: CondCallExpr, Call: strings.ToLower(t.text)}
			if !p.at(tRParen) {
				for {
					arg, err := p.parseCondExpr()
					if err != nil {
						return CondExpr{}, err
					}
					call.Args = append(call.Args, arg)
					if p.at(tComma) {
						p.advance()
						continue
					}
					break
				}
			}
			if _, err := p.expect(tRParen, ")"); err != nil {
				return CondExpr{}, err
			}
			return call, nil
		}
	}
	term, err := p.parseTerm()
	if err != nil {
		return CondExpr{}, err
	}
	if term.Kind == TermWildcard {
		return CondExpr{}, fmt.Errorf("ddlog: line %d: wildcards are not allowed in conditions", t.line)
	}
	return CondExpr{Kind: CondTermExpr, Term: term}, nil
}
