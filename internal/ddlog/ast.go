package ddlog

import (
	"fmt"
	"strings"

	"repro/internal/geom"
	"repro/internal/storage"
)

// ColType is a DDlog column type: a scalar kind or a spatial type.
type ColType struct {
	Kind     storage.Kind
	GeomType geom.Type // meaningful when Kind == KindGeom
}

// String renders the DDlog keyword.
func (c ColType) String() string {
	if c.Kind == storage.KindGeom {
		return c.GeomType.String()
	}
	switch c.Kind {
	case storage.KindInt:
		return "bigint"
	case storage.KindFloat:
		return "double"
	case storage.KindBool:
		return "bool"
	case storage.KindString:
		return "text"
	default:
		return c.Kind.String()
	}
}

// ParseColType maps a DDlog type keyword.
func ParseColType(s string) (ColType, bool) {
	switch strings.ToLower(s) {
	case "bigint", "int", "integer":
		return ColType{Kind: storage.KindInt}, true
	case "double", "float", "real":
		return ColType{Kind: storage.KindFloat}, true
	case "bool", "boolean":
		return ColType{Kind: storage.KindBool}, true
	case "text", "string", "varchar":
		return ColType{Kind: storage.KindString}, true
	}
	if g, ok := geom.ParseType(strings.ToLower(s)); ok {
		return ColType{Kind: storage.KindGeom, GeomType: g}, true
	}
	return ColType{}, false
}

// ColDecl is one column of a relation declaration.
type ColDecl struct {
	Name string
	Type ColType
}

// RelationDecl declares a typical or variable relation (paper Fig. 3, S1/S2).
type RelationDecl struct {
	Label      string // optional "S1"-style label
	Name       string
	IsVariable bool // declared with a trailing '?'
	Cols       []ColDecl

	// Spatial holds the @spatial(w) annotation: the weighing-function name,
	// empty when the relation is not spatially annotated.
	Spatial string
	// Categorical is the domain size h for categorical variable relations;
	// 0 means binary (the default).
	Categorical int

	Line int
}

// SpatialCol returns the index of the first spatial column, or -1.
func (r *RelationDecl) SpatialCol() int {
	for i, c := range r.Cols {
		if c.Type.Kind == storage.KindGeom {
			return i
		}
	}
	return -1
}

// Term is an argument of a rule atom.
type Term struct {
	// Exactly one of the fields below is meaningful, per Kind.
	Kind  TermKind
	Var   string        // TermVar
	Const storage.Value // TermConst
}

// TermKind discriminates Term.
type TermKind uint8

// Term kinds.
const (
	TermVar TermKind = iota
	TermConst
	TermWildcard
)

// String renders the term in rule syntax.
func (t Term) String() string {
	switch t.Kind {
	case TermVar:
		return t.Var
	case TermConst:
		if t.Const.Kind == storage.KindString {
			return "'" + t.Const.S + "'"
		}
		return t.Const.String()
	default:
		return "_"
	}
}

// Atom is a relation occurrence in a rule: Rel(t1, ..., tn).
type Atom struct {
	Rel   string
	Terms []Term
	Line  int
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// CondOp is a comparison operator in a condition.
type CondOp uint8

// Comparison operators.
const (
	CondEq CondOp = iota
	CondNe
	CondLt
	CondLe
	CondGt
	CondGe
	// CondTrue marks a bare boolean predicate call, e.g. within(g, L).
	CondTrue
)

var condOpNames = map[CondOp]string{
	CondEq: "=", CondNe: "!=", CondLt: "<", CondLe: "<=", CondGt: ">", CondGe: ">=",
}

// CondExpr is a side of a condition: a variable, a constant, or a predicate
// call over terms (e.g. distance(L1, L2)).
type CondExpr struct {
	Kind CondExprKind
	Term Term       // CondTerm
	Call string     // CondCall: lower-cased function name
	Args []CondExpr // CondCall arguments
}

// CondExprKind discriminates CondExpr.
type CondExprKind uint8

// CondExpr kinds.
const (
	CondTermExpr CondExprKind = iota
	CondCallExpr
)

// String renders the expression.
func (e CondExpr) String() string {
	if e.Kind == CondTermExpr {
		return e.Term.String()
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Call + "(" + strings.Join(parts, ", ") + ")"
}

// Cond is one bracketed condition of a rule body (paper Fig. 3:
// [distance(L1, L2) < 150, within(liberia_geom, L1), S2 = true]).
type Cond struct {
	Op   CondOp
	L, R CondExpr // R is unused for CondTrue
	Line int
}

// String renders the condition.
func (c Cond) String() string {
	if c.Op == CondTrue {
		return c.L.String()
	}
	return c.L.String() + " " + condOpNames[c.Op] + " " + c.R.String()
}

// HeadConnective joins the atoms of an inference-rule head.
type HeadConnective uint8

// Head connectives: A => B (imply), A ^ B (and), A | B (or); a single-atom
// head uses ConnSingle.
const (
	ConnSingle HeadConnective = iota
	ConnImply
	ConnAnd
	ConnOr
)

// HeadAtom is one (possibly negated) atom of an inference-rule head.
type HeadAtom struct {
	Atom    Atom
	Negated bool
}

// InferenceRule correlates variable relations (paper Fig. 3, R1).
type InferenceRule struct {
	Label     string
	Weight    float64
	HasWeight bool
	// LearnedWeight marks a @weight(?) rule: its weight starts at 0 and is
	// fit from evidence by the weight learner.
	LearnedWeight bool
	Connective    HeadConnective
	Head          []HeadAtom
	Body          []Atom
	Conds         []Cond
	Line          int
}

// DerivationRule instantiates variable-relation rows from input relations
// (paper Fig. 3, D1: HasEbola(C1, L1) = NULL :- County(C1, L1, _)).
type DerivationRule struct {
	Label string
	Head  Atom
	// LabelTerm supplies the evidence label: a NULL constant (query
	// variable), a constant, or a body variable carrying the label value.
	LabelTerm Term
	Body      []Atom
	Conds     []Cond
	Line      int
}

// ConstDecl binds a program-level constant name to a value; WKT strings
// parse into geometries (const liberia_geom = 'POLYGON((...))').
type ConstDecl struct {
	Name  string
	Value storage.Value
	Line  int
}

// FunctionDecl declares a UDF (paper Section III, "Spatial UDFs"):
// function NAME over (in-cols) returns (out-cols) implementation "key".
type FunctionDecl struct {
	Label          string
	Name           string
	In             []ColDecl
	Out            []ColDecl
	Implementation string
	Line           int
}

// FunctionApp applies a UDF to rows derived by a body:
// Target += fn(args) :- Body [conds].
type FunctionApp struct {
	Label  string
	Target string
	Fn     string
	Args   []Term
	Body   []Atom
	Conds  []Cond
	Line   int
}

// Program is a parsed (and, after Validate, semantically checked) DDlog
// program.
type Program struct {
	Relations   []*RelationDecl
	Consts      []*ConstDecl
	Derivations []*DerivationRule
	Rules       []*InferenceRule
	Functions   []*FunctionDecl
	Apps        []*FunctionApp

	relByName map[string]*RelationDecl
}

// Relation resolves a relation declaration by case-insensitive name.
func (p *Program) Relation(name string) (*RelationDecl, bool) {
	r, ok := p.relByName[strings.ToLower(name)]
	return r, ok
}

// VariableRelations returns the declared variable relations in order.
func (p *Program) VariableRelations() []*RelationDecl {
	var out []*RelationDecl
	for _, r := range p.Relations {
		if r.IsVariable {
			out = append(out, r)
		}
	}
	return out
}

// Const resolves a constant by name.
func (p *Program) Const(name string) (storage.Value, bool) {
	for _, c := range p.Consts {
		if strings.EqualFold(c.Name, name) {
			return c.Value, true
		}
	}
	return storage.Null, false
}

func (p *Program) indexRelations() error {
	p.relByName = map[string]*RelationDecl{}
	for _, r := range p.Relations {
		key := strings.ToLower(r.Name)
		if _, dup := p.relByName[key]; dup {
			return fmt.Errorf("ddlog: line %d: relation %s declared twice", r.Line, r.Name)
		}
		p.relByName[key] = r
	}
	return nil
}
