// Package ddlog implements Sya's spatial extension of the DDlog language
// (paper Section III): schema declarations for typical and variable
// relations, the @spatial(w) and @weight(w) annotations, spatial data types,
// derivation rules, inference rules with spatial predicates in their
// condition lists, constants, and UDF (function) declarations. A validated
// Program is the input to the grounding module.
package ddlog

import "fmt"

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tColon    // ':' (labels like "R1:"; ':-' lexes as tTurnstile)
	tAt       // @
	tQuestion // ?
	tLParen
	tRParen
	tLBracket
	tRBracket
	tComma
	tDot       // statement terminator
	tDash      // '-' (wildcard or minus)
	tUnder     // '_' wildcard
	tImplies   // =>
	tTurnstile // :-
	tPlusEq    // +=
	tCaret     // ^
	tPipe      // |
	tAmp       // &
	tBang      // !
	tEq        // =
	tNe        // != or <>
	tLt
	tLe
	tGt
	tGe
)

type tok struct {
	kind tokKind
	text string
	line int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of program"
	}
	return fmt.Sprintf("%q (line %d)", t.text, t.line)
}

// lex scans a DDlog program. '#' and '//' start line comments.
func lex(src string) ([]tok, error) {
	var out []tok
	line := 1
	i := 0
	n := len(src)
	emit := func(k tokKind, text string) {
		out = append(out, tok{kind: k, text: text, line: line})
	}
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			continue
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
			continue
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
			continue
		case isLetter(c):
			start := i
			for i < n && (isLetter(src[i]) || isDigit(src[i])) {
				i++
			}
			word := src[start:i]
			if word == "_" {
				emit(tUnder, word)
				continue
			}
			emit(tIdent, word)
			continue
		case isDigit(c):
			start := i
			for i < n && (isDigit(src[i]) || src[i] == '.') {
				// A '.' not followed by a digit terminates the number (it is
				// the statement dot).
				if src[i] == '.' && (i+1 >= n || !isDigit(src[i+1])) {
					break
				}
				i++
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && isDigit(src[j]) {
					i = j
					for i < n && isDigit(src[i]) {
						i++
					}
				}
			}
			emit(tNumber, src[start:i])
			continue
		case c == '\'' || c == '"':
			quote := c
			i++
			start := i
			var buf []byte
			for i < n && src[i] != quote {
				if src[i] == '\n' {
					line++
				}
				buf = append(buf, src[i])
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("ddlog: line %d: unterminated string starting at %q", line, src[start-1:min(start+10, n)])
			}
			i++
			emit(tString, string(buf))
			continue
		}
		two := ""
		if i+1 < n {
			two = src[i : i+2]
		}
		switch two {
		case "=>":
			emit(tImplies, two)
			i += 2
			continue
		case ":-":
			emit(tTurnstile, two)
			i += 2
			continue
		case "+=":
			emit(tPlusEq, two)
			i += 2
			continue
		case "!=", "<>":
			emit(tNe, two)
			i += 2
			continue
		case "<=":
			emit(tLe, two)
			i += 2
			continue
		case ">=":
			emit(tGe, two)
			i += 2
			continue
		}
		switch c {
		case ':':
			emit(tColon, ":")
		case '@':
			emit(tAt, "@")
		case '?':
			emit(tQuestion, "?")
		case '(':
			emit(tLParen, "(")
		case ')':
			emit(tRParen, ")")
		case '[':
			emit(tLBracket, "[")
		case ']':
			emit(tRBracket, "]")
		case ',':
			emit(tComma, ",")
		case '.':
			emit(tDot, ".")
		case '-':
			emit(tDash, "-")
		case '^':
			emit(tCaret, "^")
		case '|':
			emit(tPipe, "|")
		case '&':
			emit(tAmp, "&")
		case '!':
			emit(tBang, "!")
		case '=':
			emit(tEq, "=")
		case '<':
			emit(tLt, "<")
		case '>':
			emit(tGt, ">")
		default:
			return nil, fmt.Errorf("ddlog: line %d: unexpected character %q", line, string(c))
		}
		i++
	}
	out = append(out, tok{kind: tEOF, line: line})
	return out, nil
}

func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
