// Package wal is the serving stack's evidence write-ahead log: every
// accepted evidence batch is appended as a length-prefixed, CRC-32-framed
// record — and fsynced — *before* it is applied to the live system, so a
// crash between the ack and the apply loses nothing. On boot the log is
// replayed over the freshly loaded program (restart = load + replay, not
// re-derive); a torn or corrupted tail — the signature of a crash mid-append
// — is detected by the per-record CRC and truncated away, recovering the
// longest clean prefix.
//
// The log is compacted through a periodic snapshot that reuses the rotating
// checkpoint-pair idiom of the SYAC sampler checkpoints: the full record
// history is rewritten atomically (temp file + fsync + rename) to
// Path+".snap", the previous snapshot generation is kept at ".snap.prev" as
// a fallback against a snapshot that is later found corrupted, and the live
// log is truncated back to its header. Replay loads snapshot + log tail.
//
// The file format follows the same versioned little-endian binary idiom as
// the SYAC checkpoint format: a magic/version header ("SYAW", version 1),
// then frames of [u32 payload length | u32 CRC-32(payload) | payload]. A
// record payload is the evidence batch exactly as the API accepted it:
// relation name plus rows of text cells (parsing against the schema is the
// applier's job, so a schema change surfaces at replay, loudly).
package wal

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"repro/internal/obs"
)

// File format constants.
const (
	walMagic = 0x53594157 // "SYAW"
	// Version is the current serialization version; readers reject others.
	Version = 1
	// headerSize is magic + version.
	headerSize = 8
	// frameHeaderSize is payload length + CRC.
	frameHeaderSize = 8
	// maxPayload bounds a single record frame; a length prefix beyond it is
	// treated as tail corruption, not an allocation request.
	maxPayload = 1 << 28
)

// Record is one durable evidence batch: the upsert exactly as accepted by
// the API, before parsing.
type Record struct {
	Relation string
	Rows     [][]string
}

// Options parameterizes a Log.
type Options struct {
	// SyncEvery batches fsyncs: the file is synced once every N appended
	// records (≤1 → every append, so an acked upsert is always durable).
	// Larger values trade the durability of the last N−1 acked batches for
	// append throughput; Close and Sync flush the remainder.
	SyncEvery int
	// SnapshotEvery compacts the log into the rotating snapshot pair after
	// this many records accumulate in the live log (0 → never compact).
	SnapshotEvery int
	// Metrics receives the sya_wal_* series (nil disables).
	Metrics *obs.Registry
}

// ReplayStats reports what Open recovered.
type ReplayStats struct {
	// SnapshotRecords came from the snapshot (or its .prev fallback).
	SnapshotRecords int
	// LogRecords came from the live log tail.
	LogRecords int
	// Truncated reports that a torn or corrupted tail was cut off.
	Truncated bool
	// TruncatedAt is the offset the log was truncated to (when Truncated).
	TruncatedAt int64
	// SnapshotFallback reports that the primary snapshot was unreadable and
	// the previous generation was loaded instead.
	SnapshotFallback bool
}

// Log is an open write-ahead log. It is not internally synchronized: the
// server's upsert path is already serialized (one writer at a time), so the
// Log expects at most one Append/Sync/Compact caller at a time.
type Log struct {
	path string
	opts Options

	f    *os.File
	size int64 // current end-of-log write offset

	// records is the full durable history (snapshot + log + appends), kept
	// in memory so compaction can rewrite it; evidence batches are small
	// relative to the ground graph they pin.
	records    []Record
	logRecords int // records currently in the live log file
	unsynced   int // appends since the last fsync

	// span is the request span of the in-flight AppendCtx call, so Sync can
	// attribute its fsync to the request's trace; zero outside AppendCtx
	// (the Log is single-writer, so a plain field is race-free).
	span obs.Span

	mAppends   *obs.Counter
	mBytes     *obs.Counter
	mFsyncs    *obs.Counter
	mReplayed  *obs.Counter
	mTruncated *obs.Counter
	mSnapshots *obs.Counter
	mFallbacks *obs.Counter
	mCompactErr *obs.Counter
	mRecords   *obs.Gauge
	mSyncTime  *obs.Histogram
}

// SnapPath returns the snapshot path for a log path.
func SnapPath(path string) string { return path + ".snap" }

// prevSnapPath is the rotated previous snapshot generation.
func prevSnapPath(path string) string { return SnapPath(path) + ".prev" }

// Open opens (creating if absent) the log at path, loads the snapshot pair,
// and replays the log, truncating any torn tail. The recovered records are
// available via Records; new appends go to the live log.
func Open(path string, opts Options) (*Log, ReplayStats, error) {
	m := opts.Metrics
	l := &Log{
		path:        path,
		opts:        opts,
		mAppends:    m.Counter("sya_wal_appends_total"),
		mBytes:      m.Counter("sya_wal_appended_bytes_total"),
		mFsyncs:     m.Counter("sya_wal_fsyncs_total"),
		mReplayed:   m.Counter("sya_wal_replayed_records_total"),
		mTruncated:  m.Counter("sya_wal_truncated_tails_total"),
		mSnapshots:  m.Counter("sya_wal_snapshots_total"),
		mFallbacks:  m.Counter("sya_wal_snapshot_fallbacks_total"),
		mCompactErr: m.Counter("sya_wal_compact_errors_total"),
		mRecords:    m.Gauge("sya_wal_records"),
		mSyncTime:   m.Histogram("sya_wal_fsync_seconds", nil),
	}
	var stats ReplayStats

	// Snapshot first: the compacted prefix of the history. A snapshot is
	// written atomically, so any read failure means corruption (or a crash
	// landed between the two rotation renames) — fall back to the previous
	// generation, mirroring checkpoint ResumeFrom.
	snapRecs, err := readRecordFile(SnapPath(path))
	switch {
	case err == nil:
	case os.IsNotExist(err):
		snapRecs, err = readRecordFile(prevSnapPath(path))
		if err != nil && !os.IsNotExist(err) {
			return nil, stats, fmt.Errorf("wal: previous snapshot %s: %w", prevSnapPath(path), err)
		}
		stats.SnapshotFallback = err == nil
	default:
		primaryErr := err
		snapRecs, err = readRecordFile(prevSnapPath(path))
		if err != nil {
			return nil, stats, fmt.Errorf("wal: snapshot %s: %w (previous generation also unreadable)", SnapPath(path), primaryErr)
		}
		stats.SnapshotFallback = true
	}
	if stats.SnapshotFallback {
		l.mFallbacks.Inc()
	}
	stats.SnapshotRecords = len(snapRecs)
	l.records = snapRecs

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	logRecs, good, torn, err := scanFrames(raw)
	if err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("wal: %s: %w", path, err)
	}
	if len(raw) < headerSize {
		// New (or header-torn) log: start it fresh.
		if err := l.reset(); err != nil {
			f.Close()
			return nil, stats, err
		}
	} else if torn {
		// Crash mid-append: cut the torn tail, keeping the clean prefix.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: %w", err)
		}
		l.size = good
		stats.Truncated = true
		stats.TruncatedAt = good
		l.mTruncated.Inc()
	} else {
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("wal: %w", err)
		}
		l.size = good
	}
	stats.LogRecords = len(logRecs)
	l.records = append(l.records, logRecs...)
	l.logRecords = len(logRecs)
	l.mReplayed.Add(uint64(stats.SnapshotRecords + stats.LogRecords))
	l.mRecords.Set(float64(len(l.records)))
	return l, stats, nil
}

// reset rewrites the log as an empty headered file.
func (l *Log) reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], Version)
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.size = headerSize
	return nil
}

// Records returns the recovered-plus-appended history, oldest first. The
// slice is shared; callers must not mutate it.
func (l *Log) Records() []Record { return l.records }

// Append frames, writes, and (per the sync policy) fsyncs one record. On a
// write error the log is truncated back to the last good frame so a partial
// frame cannot corrupt the middle of the file once later appends succeed.
func (l *Log) Append(rec Record) error {
	payload := encodeRecord(rec)
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	if _, err := l.f.Write(frame); err != nil {
		// Best effort: cut whatever partial frame landed.
		_ = l.f.Truncate(l.size)
		_, _ = l.f.Seek(l.size, io.SeekStart)
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(frame))
	l.unsynced++
	if l.opts.SyncEvery <= 1 || l.unsynced >= l.opts.SyncEvery {
		if err := l.Sync(); err != nil {
			return err
		}
	}
	l.records = append(l.records, rec)
	l.logRecords++
	l.mAppends.Inc()
	l.mBytes.Add(uint64(len(frame)))
	l.mRecords.Set(float64(len(l.records)))
	if l.opts.SnapshotEvery > 0 && l.logRecords >= l.opts.SnapshotEvery {
		// Compaction failure is not an append failure: the record above is
		// already durable in the log; count it and retry at the next
		// threshold crossing.
		if err := l.Compact(); err != nil {
			l.mCompactErr.Inc()
		}
	}
	return nil
}

// AppendCtx is Append under a request context: when the context carries an
// obs request span, the fsync inside the append is recorded as a child
// stage of that request's trace (the sya_wal_fsync_seconds histogram is
// observed either way).
func (l *Log) AppendCtx(ctx context.Context, rec Record) error {
	l.span = obs.SpanFromContext(ctx)
	defer func() { l.span = obs.Span{} }()
	return l.Append(rec)
}

// Sync flushes buffered appends to stable storage. No-op when clean.
func (l *Log) Sync() error {
	if l.unsynced == 0 {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	d := time.Since(start)
	l.mSyncTime.Observe(d.Seconds())
	l.span.Event("wal_fsync", d)
	l.unsynced = 0
	l.mFsyncs.Inc()
	return nil
}

// Compact rewrites the full record history into the snapshot (atomic temp
// file + fsync + rename, previous generation rotated to ".snap.prev") and
// truncates the live log back to its header. Consecutive records for the
// same relation are merged into one, so the snapshot is both the durable
// history and its compaction.
func (l *Log) Compact() error {
	if err := l.Sync(); err != nil {
		return err
	}
	snap := SnapPath(l.path)
	tmp := snap + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := writeRecordFile(f, mergeRecords(l.records)); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := os.Rename(snap, prevSnapPath(l.path)); err != nil && !os.IsNotExist(err) {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: rotating previous snapshot: %w", err)
	}
	if err := os.Rename(tmp, snap); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := l.reset(); err != nil {
		return err
	}
	l.logRecords = 0
	l.mSnapshots.Inc()
	return nil
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	syncErr := l.Sync()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("wal: close: %w", closeErr)
	}
	return nil
}

// mergeRecords coalesces consecutive same-relation records, preserving the
// overall row order (first-pin-wins dedup depends on it).
func mergeRecords(recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if n := len(out); n > 0 && out[n-1].Relation == r.Relation {
			merged := out[n-1]
			merged.Rows = append(append([][]string(nil), merged.Rows...), r.Rows...)
			out[n-1] = merged
			continue
		}
		out = append(out, r)
	}
	return out
}

// FrameOffsets returns the record-boundary byte offsets of a log or
// snapshot file: the offset after the header, then after each complete,
// CRC-valid frame. The chaos harness tears files at (and between) these
// offsets; offs[k] is the file size at which exactly k records survive.
func FrameOffsets(path string) ([]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerSize {
		return []int64{int64(len(raw))}, nil
	}
	if err := checkHeader(raw); err != nil {
		return nil, err
	}
	offs := []int64{headerSize}
	off := int64(headerSize)
	for {
		n, ok := frameAt(raw, off)
		if !ok {
			return offs, nil
		}
		off += n
		offs = append(offs, off)
	}
}

// checkHeader validates the magic/version prefix of a headered file.
func checkHeader(raw []byte) error {
	if m := binary.LittleEndian.Uint32(raw[0:4]); m != walMagic {
		return fmt.Errorf("wal: not a WAL file (magic %08x)", m)
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != Version {
		return fmt.Errorf("wal: unsupported WAL version %d (want %d)", v, Version)
	}
	return nil
}

// frameAt reports the total size of the valid frame at off, or ok=false if
// the bytes there are short, implausible, or fail the CRC.
func frameAt(raw []byte, off int64) (int64, bool) {
	if off+frameHeaderSize > int64(len(raw)) {
		return 0, false
	}
	le := binary.LittleEndian
	plen := le.Uint32(raw[off : off+4])
	if plen > maxPayload || off+frameHeaderSize+int64(plen) > int64(len(raw)) {
		return 0, false
	}
	payload := raw[off+frameHeaderSize : off+frameHeaderSize+int64(plen)]
	if crc32.ChecksumIEEE(payload) != le.Uint32(raw[off+4:off+8]) {
		return 0, false
	}
	return frameHeaderSize + int64(plen), true
}

// scanFrames walks a headered file's frames, decoding every record up to
// the first invalid frame. It returns the decoded records, the offset of
// the end of the clean prefix, and whether trailing bytes were left beyond
// it (a torn tail). A file shorter than the header is reported as zero
// records with good=0 (the caller rewrites the header); a well-formed
// header with the wrong magic or version is an error, not a tear — that is
// the wrong file, and truncating it would destroy someone's data.
func scanFrames(raw []byte) (recs []Record, good int64, torn bool, err error) {
	if len(raw) < headerSize {
		return nil, 0, len(raw) > 0, nil
	}
	if err := checkHeader(raw); err != nil {
		return nil, 0, false, err
	}
	off := int64(headerSize)
	for {
		n, ok := frameAt(raw, off)
		if !ok {
			return recs, off, off < int64(len(raw)), nil
		}
		payload := raw[off+frameHeaderSize : off+n]
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// CRC-clean but undecodable: same-version corruption the frame
			// layer missed; treat as a tear at this record.
			return recs, off, true, nil
		}
		recs = append(recs, rec)
		off += n
	}
}

// readRecordFile loads a whole snapshot file strictly: any torn tail or
// invalid frame is an error (snapshots are written atomically, so a partial
// one is corruption, unlike the live log's expected torn tail).
func readRecordFile(path string) ([]Record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerSize {
		return nil, fmt.Errorf("wal: snapshot truncated (%d bytes)", len(raw))
	}
	recs, good, torn, err := scanFrames(raw)
	if err != nil {
		return nil, err
	}
	if torn || good != int64(len(raw)) {
		return nil, fmt.Errorf("wal: snapshot has invalid frame at offset %d", good)
	}
	return recs, nil
}

// writeRecordFile writes a header plus one frame per record.
func writeRecordFile(w io.Writer, recs []Record) error {
	var hdr [headerSize]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], walMagic)
	le.PutUint32(hdr[4:8], Version)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, rec := range recs {
		payload := encodeRecord(rec)
		var fh [frameHeaderSize]byte
		le.PutUint32(fh[0:4], uint32(len(payload)))
		le.PutUint32(fh[4:8], crc32.ChecksumIEEE(payload))
		if _, err := w.Write(fh[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// encodeRecord serializes one record payload (little-endian: relation,
// row count, then per-row cell counts and cells).
func encodeRecord(rec Record) []byte {
	size := 4 + len(rec.Relation) + 4
	for _, row := range rec.Rows {
		size += 4
		for _, cell := range row {
			size += 4 + len(cell)
		}
	}
	buf := make([]byte, 0, size)
	le := binary.LittleEndian
	putU32 := func(v uint32) {
		var b [4]byte
		le.PutUint32(b[:], v)
		buf = append(buf, b[:]...)
	}
	putU32(uint32(len(rec.Relation)))
	buf = append(buf, rec.Relation...)
	putU32(uint32(len(rec.Rows)))
	for _, row := range rec.Rows {
		putU32(uint32(len(row)))
		for _, cell := range row {
			putU32(uint32(len(cell)))
			buf = append(buf, cell...)
		}
	}
	return buf
}

// decodeRecord parses a record payload, rejecting implausible lengths.
func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	d := recDecoder{buf: payload}
	rec.Relation = d.str(1 << 16)
	nrows := d.u32()
	if nrows > 1<<24 {
		return rec, fmt.Errorf("implausible row count %d", nrows)
	}
	for i := uint32(0); i < nrows && d.err == nil; i++ {
		ncells := d.u32()
		if ncells > 1<<16 {
			return rec, fmt.Errorf("implausible cell count %d", ncells)
		}
		row := make([]string, 0, ncells)
		for c := uint32(0); c < ncells && d.err == nil; c++ {
			row = append(row, d.str(1<<24))
		}
		rec.Rows = append(rec.Rows, row)
	}
	if d.err != nil {
		return rec, d.err
	}
	if len(d.buf) != 0 {
		return rec, fmt.Errorf("record has %d trailing bytes", len(d.buf))
	}
	return rec, nil
}

// recDecoder is a latching cursor over a record payload.
type recDecoder struct {
	buf []byte
	err error
}

func (d *recDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *recDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *recDecoder) str(max int) string {
	n := d.u32()
	if d.err == nil && int(n) > max {
		d.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	return string(d.take(int(n)))
}
