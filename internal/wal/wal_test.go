package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/gibbs/testutil"
	"repro/internal/obs"
)

func testRecords() []Record {
	return []Record{
		{Relation: "CountyEvidence", Rows: [][]string{{"3", "POINT (-9.45 7.05)", "true"}}},
		{Relation: "WellEvidence", Rows: [][]string{{"7", "POINT (10 20)", "false"}, {"9", "POINT (1 2)", "true"}}},
		{Relation: "WellEvidence", Rows: [][]string{{"11", "POINT (5 5)", "true"}}},
	}
}

func mustOpen(t *testing.T, path string, opts Options) (*Log, ReplayStats) {
	t.Helper()
	l, stats, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, stats
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.wal")
	recs := testRecords()

	l, stats := mustOpen(t, path, Options{})
	if stats.SnapshotRecords != 0 || stats.LogRecords != 0 || stats.Truncated {
		t.Fatalf("fresh log stats = %+v", stats)
	}
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, stats := mustOpen(t, path, Options{})
	defer l2.Close()
	if stats.LogRecords != len(recs) || stats.Truncated || stats.SnapshotFallback {
		t.Fatalf("replay stats = %+v", stats)
	}
	if got := l2.Records(); !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed records = %+v, want %+v", got, recs)
	}
}

// TestTornTailTruncatedAtEveryOffset is the frame-boundary chaos sweep at
// the wal level: for every possible truncation point of the file — each
// record boundary and every byte inside a frame — replay must recover
// exactly the records whose frames survived complete, and truncate the file
// back to that clean prefix.
func TestTornTailTruncatedAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ev.wal")
	recs := testRecords()
	l, _ := mustOpen(t, path, Options{})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	offs, err := FrameOffsets(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offs) != len(recs)+1 {
		t.Fatalf("FrameOffsets = %v, want %d boundaries", offs, len(recs)+1)
	}
	size := offs[len(offs)-1]
	for cut := int64(headerSize); cut < size; cut++ {
		torn := filepath.Join(dir, "torn.wal")
		if err := testutil.CopyFile(torn, path); err != nil {
			t.Fatal(err)
		}
		if err := testutil.TearFileAt(torn, cut); err != nil {
			t.Fatal(err)
		}
		// Complete frames strictly before the cut survive.
		want := 0
		for _, off := range offs[1:] {
			if off <= cut {
				want++
			}
		}
		l, stats := mustOpen(t, torn, Options{})
		if stats.LogRecords != want {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, stats.LogRecords, want)
		}
		if wantTrunc := cut != offs[want]; stats.Truncated != wantTrunc {
			t.Fatalf("cut at %d: Truncated = %v, want %v", cut, stats.Truncated, wantTrunc)
		}
		if got := l.Records(); len(got) != want || (want > 0 && !reflect.DeepEqual(got, recs[:want])) {
			t.Fatalf("cut at %d: records = %+v", cut, got)
		}
		// The file itself was truncated back to the boundary, so a later
		// append cannot land after garbage.
		if fi, err := os.Stat(torn); err != nil || fi.Size() != offs[want] {
			t.Fatalf("cut at %d: file size %d, want %d (err %v)", cut, fi.Size(), offs[want], err)
		}
		// And the log accepts appends again after recovery.
		if err := l.Append(recs[0]); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptMiddleKeepsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.wal")
	recs := testRecords()
	l, _ := mustOpen(t, path, Options{})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	offs, err := FrameOffsets(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the second record's frame: the CRC rejects it and
	// everything from there is treated as a torn tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[offs[1]+frameHeaderSize+2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, stats := mustOpen(t, path, Options{})
	defer l2.Close()
	if !stats.Truncated || stats.LogRecords != 1 {
		t.Fatalf("stats after corruption = %+v, want 1 record + truncated", stats)
	}
	if !reflect.DeepEqual(l2.Records(), recs[:1]) {
		t.Fatalf("records = %+v", l2.Records())
	}
}

func TestSnapshotCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.wal")
	recs := testRecords()
	reg := obs.NewRegistry()
	// SnapshotEvery 2: the second append compacts records 1–2 into the
	// snapshot; the third lands in the fresh log.
	l, _ := mustOpen(t, path, Options{SnapshotEvery: 2, Metrics: reg})
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(SnapPath(path)); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	logOffs, err := FrameOffsets(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(logOffs) != 2 {
		t.Fatalf("log holds %d records after compaction, want 1", len(logOffs)-1)
	}
	l2, stats := mustOpen(t, path, Options{})
	defer l2.Close()
	if stats.SnapshotRecords != 2 || stats.LogRecords != 1 {
		t.Fatalf("replay stats = %+v, want 2 snapshot + 1 log records", stats)
	}
	if !reflect.DeepEqual(l2.Records(), recs) {
		t.Fatalf("records = %+v, want %+v", l2.Records(), recs)
	}
	if v := reg.Snapshot()["sya_wal_snapshots_total"]; v != 1 {
		t.Errorf("sya_wal_snapshots_total = %v, want 1", v)
	}
}

// TestSnapshotFallbackToPrev corrupts the primary snapshot: replay must use
// the rotated previous generation plus the (uncompacted) log tail.
func TestSnapshotFallbackToPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.wal")
	recs := testRecords()
	l, _ := mustOpen(t, path, Options{SnapshotEvery: 1})
	// Every append compacts, so after three appends the snapshot holds all
	// three (merged) and .prev holds the first two.
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := testutil.CorruptFile(SnapPath(path)); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	l2, stats := mustOpen(t, path, Options{Metrics: reg})
	defer l2.Close()
	if !stats.SnapshotFallback {
		t.Fatalf("stats = %+v, want snapshot fallback", stats)
	}
	// The previous snapshot holds records 1–2 (record 2 and 3 share a
	// relation, so the third-generation snapshot merged them; the second
	// generation is records 1 and 2 as appended).
	want := mergeRecords(recs[:2])
	if !reflect.DeepEqual(l2.Records(), want) {
		t.Fatalf("records = %+v, want %+v", l2.Records(), want)
	}
	if v := reg.Snapshot()["sya_wal_snapshot_fallbacks_total"]; v != 1 {
		t.Errorf("fallback counter = %v, want 1", v)
	}
}

// TestSnapshotCorruptNoFallbackFails: losing both snapshot generations must
// refuse to boot rather than silently dropping acked evidence.
func TestSnapshotCorruptNoFallbackFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.wal")
	l, _ := mustOpen(t, path, Options{})
	appendAll(t, l, testRecords())
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := testutil.CorruptFile(SnapPath(path)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open succeeded with a corrupt snapshot and no previous generation")
	}
}

func TestSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.wal")
	reg := obs.NewRegistry()
	l, _ := mustOpen(t, path, Options{SyncEvery: 3, Metrics: reg})
	recs := testRecords()
	appendAll(t, l, recs) // 3 appends → exactly one fsync
	if v := reg.Snapshot()["sya_wal_fsyncs_total"]; v != 1 {
		t.Errorf("fsyncs after 3 appends at SyncEvery=3: %v, want 1", v)
	}
	if err := l.Append(recs[0]); err != nil { // 1 unsynced
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // Close flushes the remainder
		t.Fatal(err)
	}
	if v := reg.Snapshot()["sya_wal_fsyncs_total"]; v != 2 {
		t.Errorf("fsyncs after close: %v, want 2", v)
	}
	if v := reg.Snapshot()["sya_wal_appends_total"]; v != 4 {
		t.Errorf("appends: %v, want 4", v)
	}
}

func TestWrongMagicIsErrorNotTear(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.wal")
	if err := os.WriteFile(path, []byte("not a wal file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open succeeded on a non-WAL file; truncating it would destroy data")
	}
}

func TestMergeRecordsPreservesOrder(t *testing.T) {
	recs := []Record{
		{Relation: "A", Rows: [][]string{{"1"}}},
		{Relation: "A", Rows: [][]string{{"2"}}},
		{Relation: "B", Rows: [][]string{{"3"}}},
		{Relation: "A", Rows: [][]string{{"4"}}},
	}
	got := mergeRecords(recs)
	want := []Record{
		{Relation: "A", Rows: [][]string{{"1"}, {"2"}}},
		{Relation: "B", Rows: [][]string{{"3"}}},
		{Relation: "A", Rows: [][]string{{"4"}}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeRecords = %+v, want %+v", got, want)
	}
}
