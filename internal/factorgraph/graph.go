// Package factorgraph implements the ground factor graph of MLN-based
// knowledge base construction (paper Section IV) and Sya's spatial
// extension of it: random variables (binary or categorical ground atoms),
// weighted logical factors from inference-rule groundings (Eq. 1), and
// spatial factors between pairs of spatial ground atoms (Eq. 2 for binary
// variables, Eq. 4 for categorical ones) whose weights come from a distance
// weighing function. Together they define the joint distribution of Eq. 3.
//
// Build a graph through Builder, then treat it as immutable: samplers keep
// their own assignment vectors.
package factorgraph

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// Assignment holds one value per variable. Parallel samplers (the hogwild
// baseline and the conclique-parallel spatial Gibbs sampler) share an
// Assignment across goroutines, so element access goes through atomics:
// use Get/Set rather than direct indexing when the assignment may be
// shared. Purely sequential code may index directly.
type Assignment []int32

// Get atomically reads the value of v.
func (a Assignment) Get(v VarID) int32 { return atomic.LoadInt32(&a[v]) }

// Set atomically writes the value of v.
func (a Assignment) Set(v VarID, x int32) { atomic.StoreInt32(&a[v], x) }

// Clone copies the assignment (non-atomically; callers synchronize).
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// VarID indexes a variable in the graph.
type VarID = int32

// NoEvidence marks a query variable (its value must be inferred).
const NoEvidence int32 = -1

// FactorKind enumerates logical factor semantics. A factor's "true
// grounding" count n_f (Eq. 1) is 1 when the factor is satisfied by the
// current assignment and 0 otherwise.
type FactorKind uint8

// Factor kinds, matching the correlations expressible in DDlog heads.
const (
	// FactorImply is satisfied unless all antecedents (all edge variables
	// except the last) are true and the consequent (the last variable) is
	// false: A ∧ ... => B.
	FactorImply FactorKind = iota
	// FactorAnd is satisfied when all edge variables are true.
	FactorAnd
	// FactorOr is satisfied when at least one edge variable is true.
	FactorOr
	// FactorEqual is satisfied when all edge variables agree.
	FactorEqual
	// FactorIsTrue is a unary prior: satisfied when its variable is true.
	FactorIsTrue
)

// String names the kind.
func (k FactorKind) String() string {
	switch k {
	case FactorImply:
		return "imply"
	case FactorAnd:
		return "and"
	case FactorOr:
		return "or"
	case FactorEqual:
		return "equal"
	case FactorIsTrue:
		return "istrue"
	default:
		return fmt.Sprintf("factorgraph.FactorKind(%d)", uint8(k))
	}
}

// Variable describes one ground atom.
type Variable struct {
	// Name is an external key, e.g. "IsSafe(17)".
	Name string
	// Domain is the number of values: 2 for binary, h ≥ 2 for categorical.
	Domain int32
	// Evidence is the observed value, or NoEvidence for query variables.
	Evidence int32
	// Loc is the spatial location (meaningful when HasLoc).
	Loc    geom.Point
	HasLoc bool
	// Relation indexes the variable relation the atom belongs to.
	Relation int32
}

// Graph is a finalized spatial factor graph. All slices are indexed by the
// IDs handed out during building; the graph is immutable after Finalize.
type Graph struct {
	vars []Variable

	// Logical factors in CSR form.
	factorKind   []FactorKind
	factorWeight []float64
	factorOff    []int64 // len = numFactors+1, into factorVars/factorNeg
	factorVars   []VarID
	factorNeg    []bool

	// Spatial factors: one entry per atom pair.
	spatialA, spatialB []VarID
	spatialW           []float64

	// allowedPairs[rel] is the h×h domain-value mask from the co-occurrence
	// pruning of Section IV-C (nil ⇒ all pairs allowed). Shared per
	// relation because pruning decides per domain-value pair globally.
	allowedPairs map[int32][]bool
	domainOf     map[int32]int32 // relation → h for mask indexing

	// Adjacency: variable → incident logical factors and spatial pairs.
	varFactorOff  []int64
	varFactors    []int32
	varSpatialOff []int64
	varSpatial    []int32

	// Compiled sampling kernels, built lazily on first (*Graph).Kernels call
	// (see kernel.go). The graph structure is immutable after Finalize, so
	// one compilation serves every sampler; weight updates write through.
	kernOnce sync.Once
	kern     *Kernels
}

// NumVars returns the variable count.
func (g *Graph) NumVars() int { return len(g.vars) }

// NumFactors returns the logical factor count.
func (g *Graph) NumFactors() int { return len(g.factorKind) }

// NumSpatialFactors returns the number of spatial atom pairs. In the
// categorical case each pair stands for the h×h (possibly pruned) factors
// of Definition 2; CountGroundSpatialFactors expands that.
func (g *Graph) NumSpatialFactors() int { return len(g.spatialA) }

// CountGroundSpatialFactors returns the total number of ground spatial
// factors per Definition 2: allowed (t_j, t_k) pairs summed over atom pairs.
func (g *Graph) CountGroundSpatialFactors() int64 {
	var total int64
	for i := range g.spatialA {
		rel := g.vars[g.spatialA[i]].Relation
		mask := g.allowedPairs[rel]
		if mask == nil {
			h := int64(g.vars[g.spatialA[i]].Domain)
			total += h * h
			continue
		}
		for _, ok := range mask {
			if ok {
				total++
			}
		}
	}
	return total
}

// AllowedPairMask returns a relation's h×h co-occurrence pruning mask and
// domain size h (Section IV-C). A nil mask means every value pair is
// allowed; h is 0 when the relation has no recorded domain. The returned
// slice is the graph's own — callers must not mutate it.
func (g *Graph) AllowedPairMask(rel int32) ([]bool, int32) {
	return g.allowedPairs[rel], g.domainOf[rel]
}

// Var returns variable metadata.
func (g *Graph) Var(id VarID) Variable { return g.vars[id] }

// DomainOf returns a variable's domain size without copying the full
// metadata struct — the samplers call this once per Gibbs step.
func (g *Graph) DomainOf(id VarID) int32 { return g.vars[id].Domain }

// Vars iterates variable IDs with metadata.
func (g *Graph) Vars(fn func(id VarID, v Variable) bool) {
	for i := range g.vars {
		if !fn(VarID(i), g.vars[i]) {
			return
		}
	}
}

// FactorVars returns the edge variables and negation flags of factor f.
func (g *Graph) FactorVars(f int32) ([]VarID, []bool) {
	lo, hi := g.factorOff[f], g.factorOff[f+1]
	return g.factorVars[lo:hi], g.factorNeg[lo:hi]
}

// FactorKindOf returns a factor's kind.
func (g *Graph) FactorKindOf(f int32) FactorKind { return g.factorKind[f] }

// FactorWeightOf returns a factor's weight.
func (g *Graph) FactorWeightOf(f int32) float64 { return g.factorWeight[f] }

// SetFactorWeight updates a logical factor's weight. Weight learning
// (internal/learn) adjusts weights between sampling sweeps; callers must
// not race this with concurrent samplers.
func (g *Graph) SetFactorWeight(f int32, w float64) { g.factorWeight[f] = w }

// SetSpatialWeight updates a spatial pair's weight (used when learning the
// spatial scale). Same concurrency caveat as SetFactorWeight.
func (g *Graph) SetSpatialWeight(s int32, w float64) { g.spatialW[s] = w }

// FactorSatisfied reports whether factor f is satisfied (n_f = 1) under
// the assignment.
func (g *Graph) FactorSatisfied(f int32, assign Assignment) bool {
	return g.satisfied(f, assign, -1, 0)
}

// SpatialAgreement returns +1 when a spatial pair's endpoints agree, −1
// when they disagree, and 0 when the categorical value pair is pruned —
// the pair's energy contribution per unit weight (Eq. 3).
func (g *Graph) SpatialAgreement(s int32, assign Assignment) float64 {
	a, b := g.spatialA[s], g.spatialB[s]
	va, vb := assign.Get(a), assign.Get(b)
	if !g.spatialPairAllowed(g.vars[a].Relation, va, vb) {
		return 0
	}
	if va == vb {
		return 1
	}
	return -1
}

// SpatialPair returns the endpoints and weight of spatial pair s.
func (g *Graph) SpatialPair(s int32) (a, b VarID, w float64) {
	return g.spatialA[s], g.spatialB[s], g.spatialW[s]
}

// VarLogicalFactors returns the logical factors incident to v.
func (g *Graph) VarLogicalFactors(v VarID) []int32 {
	return g.varFactors[g.varFactorOff[v]:g.varFactorOff[v+1]]
}

// VarSpatialPairs returns the spatial pairs incident to v.
func (g *Graph) VarSpatialPairs(v VarID) []int32 {
	return g.varSpatial[g.varSpatialOff[v]:g.varSpatialOff[v+1]]
}

// InitialAssignment returns an assignment with evidence fixed and query
// variables at value 0.
func (g *Graph) InitialAssignment() Assignment {
	a := make(Assignment, len(g.vars))
	for i, v := range g.vars {
		if v.Evidence != NoEvidence {
			a[i] = v.Evidence
		}
	}
	return a
}

// valueOf reads a variable's value, applying the candidate override used by
// ConditionalScores so that score evaluation never mutates the shared
// assignment.
func valueOf(assign Assignment, v, ov VarID, ovVal int32) int32 {
	if v == ov {
		return ovVal
	}
	return assign.Get(v)
}

// satisfied reports n_f ∈ {0, 1} for factor f under the assignment, with
// variable ov overridden to ovVal (pass ov = -1 for no override).
func (g *Graph) satisfied(f int32, assign Assignment, ov VarID, ovVal int32) bool {
	vars, neg := g.FactorVars(f)
	truth := func(i int) bool {
		t := valueOf(assign, vars[i], ov, ovVal) != 0
		if neg[i] {
			t = !t
		}
		return t
	}
	switch g.factorKind[f] {
	case FactorImply:
		n := len(vars)
		for i := 0; i < n-1; i++ {
			if !truth(i) {
				return true // a false antecedent satisfies the implication
			}
		}
		return truth(n - 1)
	case FactorAnd:
		for i := range vars {
			if !truth(i) {
				return false
			}
		}
		return true
	case FactorOr:
		for i := range vars {
			if truth(i) {
				return true
			}
		}
		return false
	case FactorEqual:
		first := valueOf(assign, vars[0], ov, ovVal)
		for _, v := range vars[1:] {
			if valueOf(assign, v, ov, ovVal) != first {
				return false
			}
		}
		return true
	case FactorIsTrue:
		return truth(0)
	default:
		return false
	}
}

// spatialPairAllowed reports whether the (tj, tk) domain-value pair survived
// pruning for the pair's relation.
func (g *Graph) spatialPairAllowed(rel int32, tj, tk int32) bool {
	mask := g.allowedPairs[rel]
	if mask == nil {
		return true
	}
	h := g.domainOf[rel]
	return mask[tj*h+tk]
}

// spatialEnergy returns the Eq. 3 contribution of spatial pair s:
// +w when the endpoints agree, −w when they disagree, 0 when the
// categorical value pair was pruned (inactive factor). Variable ov is
// overridden to ovVal (ov = -1 for no override).
func (g *Graph) spatialEnergy(s int32, assign Assignment, ov VarID, ovVal int32) float64 {
	a, b, w := g.spatialA[s], g.spatialB[s], g.spatialW[s]
	va := valueOf(assign, a, ov, ovVal)
	vb := valueOf(assign, b, ov, ovVal)
	rel := g.vars[a].Relation
	if !g.spatialPairAllowed(rel, va, vb) {
		return 0
	}
	if va == vb {
		return w
	}
	return -w
}

// Energy returns the unnormalized log-probability of an assignment
// (the exponent of Eq. 3).
func (g *Graph) Energy(assign Assignment) float64 {
	var e float64
	for f := int32(0); f < int32(len(g.factorKind)); f++ {
		if g.satisfied(f, assign, -1, 0) {
			e += g.factorWeight[f]
		}
	}
	for s := int32(0); s < int32(len(g.spatialA)); s++ {
		e += g.spatialEnergy(s, assign, -1, 0)
	}
	return e
}

// ConditionalScores fills buf (length ≥ the variable's domain) with the
// unnormalized log-probabilities of each candidate value of v given the
// rest of the assignment; it returns buf[:domain]. It never mutates assign,
// so concurrent readers (conclique-parallel and hogwild samplers) observe
// a consistent array. This is the inner step of every Gibbs sampler variant
// in internal/gibbs.
func (g *Graph) ConditionalScores(v VarID, assign Assignment, buf []float64) []float64 {
	domain := int(g.vars[v].Domain)
	buf = buf[:domain]
	for x := 0; x < domain; x++ {
		xv := int32(x)
		var e float64
		for _, f := range g.VarLogicalFactors(v) {
			if g.satisfied(f, assign, v, xv) {
				e += g.factorWeight[f]
			}
		}
		for _, s := range g.VarSpatialPairs(v) {
			e += g.spatialEnergy(s, assign, v, xv)
		}
		buf[x] = e
	}
	return buf
}

// BinaryConditionalScores is the buffer-free fast path of ConditionalScores
// for binary variables: it returns the unnormalized log-probabilities of
// v = 0 and v = 1 given the rest of the assignment, accumulating both
// candidates in one pass so each incident spatial pair reads its other
// endpoint exactly once. It matches ConditionalScores bit-for-bit (same
// accumulation order per candidate) and never mutates assign.
func (g *Graph) BinaryConditionalScores(v VarID, assign Assignment) (s0, s1 float64) {
	for _, f := range g.VarLogicalFactors(v) {
		w := g.factorWeight[f]
		if g.satisfied(f, assign, v, 0) {
			s0 += w
		}
		if g.satisfied(f, assign, v, 1) {
			s1 += w
		}
	}
	for _, s := range g.VarSpatialPairs(v) {
		a, b, w := g.spatialA[s], g.spatialB[s], g.spatialW[s]
		other := a
		if other == v {
			other = b
		}
		ov := assign.Get(other)
		if mask := g.allowedPairs[g.vars[a].Relation]; mask != nil {
			// Pruned candidate pairs contribute nothing (Definition 2).
			h := g.domainOf[g.vars[a].Relation]
			for x := int32(0); x < 2; x++ {
				tj, tk := x, ov
				if v != a {
					tj, tk = ov, x
				}
				if !mask[tj*h+tk] {
					continue
				}
				e := w
				if x != ov {
					e = -w
				}
				if x == 0 {
					s0 += e
				} else {
					s1 += e
				}
			}
			continue
		}
		if ov == 0 {
			s0 += w
			s1 -= w
		} else {
			s0 -= w
			s1 += w
		}
	}
	return s0, s1
}

// Validate checks structural invariants (for tests): edge variables in
// range, weights finite, spatial pairs between same-relation spatial
// variables with matching domains, factor arities consistent with kinds.
func (g *Graph) Validate() error {
	n := VarID(len(g.vars))
	for f := int32(0); f < int32(len(g.factorKind)); f++ {
		vars, neg := g.FactorVars(f)
		if len(vars) == 0 {
			return fmt.Errorf("factor %d has no variables", f)
		}
		if len(vars) != len(neg) {
			return fmt.Errorf("factor %d: vars/neg length mismatch", f)
		}
		if g.factorKind[f] == FactorIsTrue && len(vars) != 1 {
			return fmt.Errorf("factor %d: istrue must be unary, has %d vars", f, len(vars))
		}
		if g.factorKind[f] == FactorImply && len(vars) < 2 {
			return fmt.Errorf("factor %d: imply needs at least 2 vars", f)
		}
		for _, v := range vars {
			if v < 0 || v >= n {
				return fmt.Errorf("factor %d references variable %d out of range", f, v)
			}
		}
		if math.IsNaN(g.factorWeight[f]) || math.IsInf(g.factorWeight[f], 0) {
			return fmt.Errorf("factor %d has non-finite weight %v", f, g.factorWeight[f])
		}
	}
	for s := range g.spatialA {
		a, b := g.spatialA[s], g.spatialB[s]
		if a < 0 || a >= n || b < 0 || b >= n {
			return fmt.Errorf("spatial pair %d out of range", s)
		}
		if a == b {
			return fmt.Errorf("spatial pair %d is a self-loop on %d", s, a)
		}
		va, vb := g.vars[a], g.vars[b]
		if va.Relation != vb.Relation {
			return fmt.Errorf("spatial pair %d crosses relations %d and %d", s, va.Relation, vb.Relation)
		}
		if va.Domain != vb.Domain {
			return fmt.Errorf("spatial pair %d joins mismatched domains %d and %d", s, va.Domain, vb.Domain)
		}
		if !va.HasLoc || !vb.HasLoc {
			return fmt.Errorf("spatial pair %d joins non-spatial atoms", s)
		}
		if g.spatialW[s] < 0 || math.IsNaN(g.spatialW[s]) || math.IsInf(g.spatialW[s], 0) {
			return fmt.Errorf("spatial pair %d has bad weight %v", s, g.spatialW[s])
		}
	}
	for i, v := range g.vars {
		if v.Domain < 2 {
			return fmt.Errorf("variable %d has domain %d < 2", i, v.Domain)
		}
		if v.Evidence != NoEvidence && (v.Evidence < 0 || v.Evidence >= v.Domain) {
			return fmt.Errorf("variable %d evidence %d outside domain %d", i, v.Evidence, v.Domain)
		}
	}
	return nil
}
