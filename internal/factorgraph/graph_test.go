package factorgraph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// buildChain creates n binary spatial variables in a row with imply factors
// v_i => v_{i+1} and spatial pairs between neighbours.
func buildChain(t *testing.T, n int, implyW, spatialW float64) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		ev := NoEvidence
		if i == 0 {
			ev = 1
		}
		if _, err := b.AddVariable(Variable{
			Name: "v", Domain: 2, Evidence: ev,
			Loc: geom.Pt(float64(i), 0), HasLoc: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		if implyW != 0 {
			if err := b.AddFactor(FactorImply, implyW, []VarID{VarID(i), VarID(i + 1)}, nil); err != nil {
				t.Fatal(err)
			}
		}
		if spatialW != 0 {
			if err := b.AddSpatialPair(VarID(i), VarID(i+1), spatialW); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddVariable(Variable{Domain: 1}); err == nil {
		t.Error("domain 1 should fail")
	}
	if _, err := b.AddVariable(Variable{Domain: 2, Evidence: 5}); err == nil {
		t.Error("out-of-domain evidence should fail")
	}
	v0, _ := b.AddVariable(Variable{Domain: 2, Evidence: NoEvidence, HasLoc: true})
	v1, _ := b.AddVariable(Variable{Domain: 2, Evidence: NoEvidence, HasLoc: true})
	v2, _ := b.AddVariable(Variable{Domain: 2, Evidence: NoEvidence, Relation: 1, HasLoc: true})
	if err := b.AddFactor(FactorImply, 1, []VarID{v0}, nil); err == nil {
		t.Error("unary imply should fail")
	}
	if err := b.AddFactor(FactorIsTrue, 1, []VarID{v0, v1}, nil); err == nil {
		t.Error("binary istrue should fail")
	}
	if err := b.AddFactor(FactorAnd, 1, nil, nil); err == nil {
		t.Error("empty factor should fail")
	}
	if err := b.AddFactor(FactorAnd, 1, []VarID{99}, nil); err == nil {
		t.Error("unknown var should fail")
	}
	if err := b.AddFactor(FactorAnd, 1, []VarID{v0, v1}, []bool{true}); err == nil {
		t.Error("neg length mismatch should fail")
	}
	if err := b.AddSpatialPair(v0, v0, 1); err == nil {
		t.Error("self pair should fail")
	}
	if err := b.AddSpatialPair(v0, v2, 1); err == nil {
		t.Error("cross-relation pair should fail")
	}
	if err := b.AddSpatialPair(v0, v1, -1); err == nil {
		t.Error("negative weight should fail")
	}
	if err := b.AddSpatialPair(v0, v1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddSpatialPair(v1, v0, 1); err == nil {
		t.Error("duplicate (reversed) pair should fail")
	}
	if err := b.SetAllowedPairs(0, 2, []bool{true}); err == nil {
		t.Error("wrong mask size should fail")
	}
}

func TestFactorSemantics(t *testing.T) {
	b := NewBuilder()
	var ids []VarID
	for i := 0; i < 3; i++ {
		id, _ := b.AddVariable(Variable{Domain: 2, Evidence: NoEvidence})
		ids = append(ids, id)
	}
	check := func(kind FactorKind, vars []VarID, neg []bool, assign []int32, want bool) {
		t.Helper()
		bb := NewBuilder()
		for range ids {
			_, _ = bb.AddVariable(Variable{Domain: 2, Evidence: NoEvidence})
		}
		if err := bb.AddFactor(kind, 1, vars, neg); err != nil {
			t.Fatal(err)
		}
		g, err := bb.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		if got := g.satisfied(0, assign, -1, 0); got != want {
			t.Errorf("%v vars=%v neg=%v assign=%v: satisfied=%v want %v", kind, vars, neg, assign, got, want)
		}
	}
	two := []VarID{0, 1}
	three := []VarID{0, 1, 2}
	// Imply: A => B.
	check(FactorImply, two, nil, []int32{1, 1, 0}, true)
	check(FactorImply, two, nil, []int32{1, 0, 0}, false)
	check(FactorImply, two, nil, []int32{0, 0, 0}, true)
	check(FactorImply, two, nil, []int32{0, 1, 0}, true)
	// Imply with two antecedents: A ∧ B => C.
	check(FactorImply, three, nil, []int32{1, 1, 0}, false)
	check(FactorImply, three, nil, []int32{1, 0, 0}, true)
	check(FactorImply, three, nil, []int32{1, 1, 1}, true)
	// Negated consequent: A => ¬B.
	check(FactorImply, two, []bool{false, true}, []int32{1, 1, 0}, false)
	check(FactorImply, two, []bool{false, true}, []int32{1, 0, 0}, true)
	// And / Or / Equal / IsTrue.
	check(FactorAnd, two, nil, []int32{1, 1, 0}, true)
	check(FactorAnd, two, nil, []int32{1, 0, 0}, false)
	check(FactorOr, two, nil, []int32{0, 1, 0}, true)
	check(FactorOr, two, nil, []int32{0, 0, 0}, false)
	check(FactorEqual, two, nil, []int32{1, 1, 0}, true)
	check(FactorEqual, two, nil, []int32{0, 1, 0}, false)
	check(FactorIsTrue, []VarID{1}, nil, []int32{0, 1, 0}, true)
	check(FactorIsTrue, []VarID{1}, []bool{true}, []int32{0, 1, 0}, false)
}

func TestSpatialEnergyBinary(t *testing.T) {
	g := buildChain(t, 2, 0, 0.8)
	assign := []int32{1, 1}
	if e := g.Energy(assign); math.Abs(e-0.8) > 1e-12 {
		t.Errorf("agree energy = %v, want 0.8", e)
	}
	assign = []int32{1, 0}
	if e := g.Energy(assign); math.Abs(e+0.8) > 1e-12 {
		t.Errorf("disagree energy = %v, want -0.8", e)
	}
}

func TestCategoricalPruningMask(t *testing.T) {
	b := NewBuilder()
	h := int32(3)
	v0, _ := b.AddVariable(Variable{Domain: h, Evidence: NoEvidence, HasLoc: true})
	v1, _ := b.AddVariable(Variable{Domain: h, Evidence: NoEvidence, HasLoc: true, Loc: geom.Pt(1, 0)})
	if err := b.AddSpatialPair(v0, v1, 0.5); err != nil {
		t.Fatal(err)
	}
	// Allow only (0,0) and (1,2).
	mask := make([]bool, h*h)
	mask[0*3+0] = true
	mask[1*3+2] = true
	if err := b.SetAllowedPairs(0, h, mask); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if e := g.Energy([]int32{0, 0}); e != 0.5 {
		t.Errorf("(0,0) energy = %v, want +0.5", e)
	}
	if e := g.Energy([]int32{1, 2}); e != -0.5 {
		t.Errorf("(1,2) energy = %v, want -0.5 (allowed, disagree)", e)
	}
	if e := g.Energy([]int32{2, 2}); e != 0 {
		t.Errorf("(2,2) energy = %v, want 0 (pruned)", e)
	}
	if e := g.Energy([]int32{2, 1}); e != 0 {
		t.Errorf("(2,1) energy = %v, want 0 (pruned)", e)
	}
	if got := g.CountGroundSpatialFactors(); got != 2 {
		t.Errorf("ground spatial factors = %d, want 2", got)
	}
}

func TestCountGroundSpatialFactorsUnpruned(t *testing.T) {
	g := buildChain(t, 3, 0, 1) // 2 pairs, h=2 → 8 ground factors
	if got := g.CountGroundSpatialFactors(); got != 8 {
		t.Errorf("ground factors = %d, want 8", got)
	}
}

func TestConditionalScoresMatchEnergyDelta(t *testing.T) {
	// For random graphs, the conditional score difference for a variable
	// must equal the full-energy difference (the locality property the
	// samplers rely on).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		b := NewBuilder()
		n := 6
		for i := 0; i < n; i++ {
			_, _ = b.AddVariable(Variable{
				Domain: 2, Evidence: NoEvidence,
				Loc: geom.Pt(rng.Float64()*10, rng.Float64()*10), HasLoc: true,
			})
		}
		kinds := []FactorKind{FactorImply, FactorAnd, FactorOr, FactorEqual}
		for f := 0; f < 8; f++ {
			a, c := VarID(rng.Intn(n)), VarID(rng.Intn(n))
			if a == c {
				continue
			}
			neg := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
			if err := b.AddFactor(kinds[rng.Intn(len(kinds))], rng.NormFloat64(), []VarID{a, c}, neg); err != nil {
				t.Fatal(err)
			}
		}
		for s := 0; s < 5; s++ {
			a, c := VarID(rng.Intn(n)), VarID(rng.Intn(n))
			if a == c {
				continue
			}
			_ = b.AddSpatialPair(a, c, rng.Float64()) // duplicates allowed to fail
		}
		g, err := b.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]int32, n)
		for i := range assign {
			assign[i] = int32(rng.Intn(2))
		}
		buf := make([]float64, 2)
		for v := VarID(0); v < VarID(n); v++ {
			scores := g.ConditionalScores(v, assign, buf)
			saved := assign[v]
			assign[v] = 0
			e0 := g.Energy(assign)
			assign[v] = 1
			e1 := g.Energy(assign)
			assign[v] = saved
			if math.Abs((scores[1]-scores[0])-(e1-e0)) > 1e-9 {
				t.Fatalf("trial %d var %d: score delta %v != energy delta %v",
					trial, v, scores[1]-scores[0], e1-e0)
			}
		}
	}
}

func TestInitialAssignment(t *testing.T) {
	g := buildChain(t, 4, 0.5, 0.5)
	a := g.InitialAssignment()
	if a[0] != 1 {
		t.Error("evidence not set")
	}
	for _, v := range a[1:] {
		if v != 0 {
			t.Error("query vars should start at 0")
		}
	}
}

func TestExactMarginalsSingleFactor(t *testing.T) {
	// One imply factor A => B with A observed true:
	// P(B=1) = e^w / (e^w + 1) since B=0 leaves the factor unsatisfied.
	b := NewBuilder()
	a, _ := b.AddVariable(Variable{Domain: 2, Evidence: 1})
	c, _ := b.AddVariable(Variable{Domain: 2, Evidence: NoEvidence})
	w := 1.3
	if err := b.AddFactor(FactorImply, w, []VarID{a, c}, nil); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExactMarginals(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(w) / (math.Exp(w) + 1)
	if got := TrueProbability(m, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(B) = %v, want %v", got, want)
	}
	// Evidence variable has a point mass.
	if m[a][1] != 1 || m[a][0] != 0 {
		t.Errorf("evidence marginal = %v", m[a])
	}
}

func TestExactMarginalsSpatialPair(t *testing.T) {
	// Spatial pair with one observed atom: P(agree) = e^w/(e^w+e^-w).
	b := NewBuilder()
	a, _ := b.AddVariable(Variable{Domain: 2, Evidence: 1, HasLoc: true})
	c, _ := b.AddVariable(Variable{Domain: 2, Evidence: NoEvidence, HasLoc: true, Loc: geom.Pt(1, 0)})
	w := 0.9
	if err := b.AddSpatialPair(a, c, w); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExactMarginals(g, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(w) / (math.Exp(w) + math.Exp(-w))
	if got := TrueProbability(m, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("P(agree) = %v, want %v", got, want)
	}
}

func TestExactMarginalsCap(t *testing.T) {
	g := buildChain(t, 30, 0.5, 0) // 29 query vars → 2^29 states
	if _, err := ExactMarginals(g, 1<<20); err == nil {
		t.Error("state cap should trigger")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := buildChain(t, 3, 0.5, 0.7)
	if g.NumVars() != 3 || g.NumFactors() != 2 || g.NumSpatialFactors() != 2 {
		t.Fatalf("counts: %d %d %d", g.NumVars(), g.NumFactors(), g.NumSpatialFactors())
	}
	if g.FactorKindOf(0) != FactorImply || g.FactorWeightOf(0) != 0.5 {
		t.Error("factor metadata mismatch")
	}
	a, c, w := g.SpatialPair(0)
	if a != 0 || c != 1 || w != 0.7 {
		t.Errorf("spatial pair = %d %d %v", a, c, w)
	}
	// Middle variable touches both factors and both pairs.
	if len(g.VarLogicalFactors(1)) != 2 || len(g.VarSpatialPairs(1)) != 2 {
		t.Errorf("adjacency sizes: %d %d", len(g.VarLogicalFactors(1)), len(g.VarSpatialPairs(1)))
	}
	count := 0
	g.Vars(func(id VarID, v Variable) bool { count++; return true })
	if count != 3 {
		t.Errorf("Vars visited %d", count)
	}
	count = 0
	g.Vars(func(id VarID, v Variable) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestFactorKindString(t *testing.T) {
	for k, want := range map[FactorKind]string{
		FactorImply: "imply", FactorAnd: "and", FactorOr: "or",
		FactorEqual: "equal", FactorIsTrue: "istrue",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}

func TestDuplicateVarInFactorAdjacency(t *testing.T) {
	b := NewBuilder()
	v, _ := b.AddVariable(Variable{Domain: 2, Evidence: NoEvidence})
	u, _ := b.AddVariable(Variable{Domain: 2, Evidence: NoEvidence})
	if err := b.AddFactor(FactorImply, 1, []VarID{v, v}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFactor(FactorImply, 1, []VarID{v, u}, nil); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.VarLogicalFactors(v)); got != 2 {
		t.Errorf("v adjacency = %d, want 2 (self-factor listed once)", got)
	}
}
