package factorgraph

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/geom"
)

// The paper stores the ground factor graph in a relational database so the
// expensive grounding phase can be reused across inference sessions. This
// file provides the equivalent capability for the in-memory graph: a
// versioned binary snapshot (gob-encoded) that round-trips every field,
// including the categorical pruning masks.

// snapshotVersion guards against decoding incompatible files.
const snapshotVersion = 1

// snapshot is the exported mirror of Graph for encoding.
type snapshot struct {
	Version int

	Names    []string
	Domains  []int32
	Evidence []int32
	LocX     []float64
	LocY     []float64
	HasLoc   []bool
	Relation []int32

	FactorKind   []FactorKind
	FactorWeight []float64
	FactorOff    []int64
	FactorVars   []VarID
	FactorNeg    []bool

	SpatialA []VarID
	SpatialB []VarID
	SpatialW []float64

	AllowedPairs map[int32][]bool
	DomainOf     map[int32]int32
}

// WriteTo serializes the graph. It implements the usual (n, err) contract
// loosely: n is 0 because gob does not expose byte counts.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	s := snapshot{
		Version:      snapshotVersion,
		FactorKind:   g.factorKind,
		FactorWeight: g.factorWeight,
		FactorOff:    g.factorOff,
		FactorVars:   g.factorVars,
		FactorNeg:    g.factorNeg,
		SpatialA:     g.spatialA,
		SpatialB:     g.spatialB,
		SpatialW:     g.spatialW,
		AllowedPairs: g.allowedPairs,
		DomainOf:     g.domainOf,
	}
	for _, v := range g.vars {
		s.Names = append(s.Names, v.Name)
		s.Domains = append(s.Domains, v.Domain)
		s.Evidence = append(s.Evidence, v.Evidence)
		s.LocX = append(s.LocX, v.Loc.X)
		s.LocY = append(s.LocY, v.Loc.Y)
		s.HasLoc = append(s.HasLoc, v.HasLoc)
		s.Relation = append(s.Relation, v.Relation)
	}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return 0, fmt.Errorf("factorgraph: encoding snapshot: %w", err)
	}
	return 0, nil
}

// ReadGraph deserializes a graph written by WriteTo, rebuilding the
// adjacency indexes and re-validating every invariant.
func ReadGraph(r io.Reader) (*Graph, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("factorgraph: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("factorgraph: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	b := NewBuilder()
	for i := range s.Names {
		v := Variable{
			Name:     s.Names[i],
			Domain:   s.Domains[i],
			Evidence: s.Evidence[i],
			Loc:      geom.Pt(s.LocX[i], s.LocY[i]),
			HasLoc:   s.HasLoc[i],
			Relation: s.Relation[i],
		}
		if _, err := b.AddVariable(v); err != nil {
			return nil, fmt.Errorf("factorgraph: snapshot variable %d: %w", i, err)
		}
	}
	if len(s.FactorOff) == 0 || len(s.FactorKind) != len(s.FactorWeight) ||
		len(s.FactorOff) != len(s.FactorKind)+1 {
		return nil, fmt.Errorf("factorgraph: corrupt factor arrays in snapshot")
	}
	for f := 0; f < len(s.FactorKind); f++ {
		lo, hi := s.FactorOff[f], s.FactorOff[f+1]
		if lo < 0 || hi > int64(len(s.FactorVars)) || lo > hi || hi > int64(len(s.FactorNeg)) {
			return nil, fmt.Errorf("factorgraph: corrupt factor offsets in snapshot")
		}
		if err := b.AddFactor(s.FactorKind[f], s.FactorWeight[f],
			s.FactorVars[lo:hi], s.FactorNeg[lo:hi]); err != nil {
			return nil, fmt.Errorf("factorgraph: snapshot factor %d: %w", f, err)
		}
	}
	if len(s.SpatialA) != len(s.SpatialB) || len(s.SpatialA) != len(s.SpatialW) {
		return nil, fmt.Errorf("factorgraph: corrupt spatial arrays in snapshot")
	}
	for i := range s.SpatialA {
		if err := b.AddSpatialPair(s.SpatialA[i], s.SpatialB[i], s.SpatialW[i]); err != nil {
			return nil, fmt.Errorf("factorgraph: snapshot spatial pair %d: %w", i, err)
		}
	}
	for rel, h := range s.DomainOf {
		if err := b.SetAllowedPairs(rel, h, s.AllowedPairs[rel]); err != nil {
			return nil, fmt.Errorf("factorgraph: snapshot mask for relation %d: %w", rel, err)
		}
	}
	return b.Finalize()
}
