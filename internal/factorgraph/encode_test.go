package factorgraph

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomGraph builds a graph exercising every feature: categorical and
// binary variables, all factor kinds, negations, spatial pairs, and a
// pruning mask.
func randomGraph(t *testing.T, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	n := 40
	for i := 0; i < n; i++ {
		domain := int32(2)
		rel := int32(0)
		if i%5 == 0 {
			domain = 4
			rel = 1
		}
		ev := NoEvidence
		if rng.Intn(3) == 0 {
			ev = int32(rng.Intn(int(domain)))
		}
		if _, err := b.AddVariable(Variable{
			Name: "v", Domain: domain, Evidence: ev, Relation: rel,
			Loc: geom.Pt(rng.Float64()*100, rng.Float64()*100), HasLoc: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	kinds := []FactorKind{FactorImply, FactorAnd, FactorOr, FactorEqual}
	for f := 0; f < 60; f++ {
		// Binary variables only for logical factors in this test.
		var vars []VarID
		for len(vars) < 2 {
			v := VarID(rng.Intn(n))
			if v%5 != 0 {
				vars = append(vars, v)
			}
		}
		neg := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0}
		if err := b.AddFactor(kinds[rng.Intn(len(kinds))], rng.NormFloat64(), vars, neg); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddFactor(FactorIsTrue, 0.4, []VarID{1}, nil); err != nil {
		t.Fatal(err)
	}
	added := map[[2]VarID]bool{}
	for s := 0; s < 30; s++ {
		a, c := VarID(rng.Intn(n)), VarID(rng.Intn(n))
		if a == c || (a%5 == 0) != (c%5 == 0) {
			continue
		}
		key := [2]VarID{min32(a, c), max32(a, c)}
		if added[key] {
			continue
		}
		added[key] = true
		if err := b.AddSpatialPair(a, c, rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	mask := make([]bool, 16)
	for i := range mask {
		mask[i] = rng.Intn(2) == 0
	}
	mask[0] = true
	if err := b.SetAllowedPairs(1, 4, mask); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func min32(a, b VarID) VarID {
	if a < b {
		return a
	}
	return b
}

func max32(a, b VarID) VarID {
	if a > b {
		return a
	}
	return b
}

func TestGraphRoundTrip(t *testing.T) {
	g := randomGraph(t, 11)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVars() != g.NumVars() || g2.NumFactors() != g.NumFactors() ||
		g2.NumSpatialFactors() != g.NumSpatialFactors() {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			g2.NumVars(), g2.NumFactors(), g2.NumSpatialFactors(),
			g.NumVars(), g.NumFactors(), g.NumSpatialFactors())
	}
	// Energies agree on random assignments — the strongest equality check.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		assign := make(Assignment, g.NumVars())
		for i := range assign {
			assign[i] = int32(rng.Intn(int(g.Var(VarID(i)).Domain)))
		}
		e1, e2 := g.Energy(assign), g2.Energy(assign)
		if e1 != e2 {
			t.Fatalf("trial %d: energy %v vs %v", trial, e1, e2)
		}
	}
	// Variable metadata round-trips.
	for i := 0; i < g.NumVars(); i++ {
		if g.Var(VarID(i)) != g2.Var(VarID(i)) {
			t.Fatalf("variable %d metadata differs", i)
		}
	}
	if g2.CountGroundSpatialFactors() != g.CountGroundSpatialFactors() {
		t.Error("pruning mask did not round-trip")
	}
}

func TestReadGraphErrors(t *testing.T) {
	if _, err := ReadGraph(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadGraph(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestRoundTripDeterministicBytes(t *testing.T) {
	g := randomGraph(t, 21)
	var b1, b2 bytes.Buffer
	if _, err := g.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(bytes.NewReader(b1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g2.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	// Apart from gob's map ordering (the mask map has one key here), the
	// re-encoded bytes match.
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("re-encoded snapshot differs")
	}
}
