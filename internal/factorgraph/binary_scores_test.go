package factorgraph_test

// External test package so the harness generators in gibbs/testutil can be
// reused without an import cycle.

import (
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs/testutil"
)

// TestBinaryConditionalScoresMatchesGeneric checks the buffer-free binary
// fast path against the generic ConditionalScores on random graphs —
// logical-only, spatial, and spatial with a pruning mask — over many random
// assignments. The two must agree exactly (same accumulation order per
// candidate), since the samplers treat them as interchangeable.
func TestBinaryConditionalScoresMatchesGeneric(t *testing.T) {
	specs := []testutil.Spec{
		{Domain: 2, Vars: 30, LogicalFactors: 60, Seed: 101},
		{Domain: 2, Vars: 30, Spatial: true, LogicalFactors: 40, SpatialPairs: 70, Seed: 102},
		{Domain: 2, Vars: 30, Spatial: true, LogicalFactors: 40, SpatialPairs: 70, PruneMask: true, Seed: 103},
	}
	for si, spec := range specs {
		g, err := testutil.RandomGraph(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", si, err)
		}
		rng := testutil.NewRand(uint64(si) + 7)
		assign := g.InitialAssignment()
		buf := make([]float64, 2)
		for trial := 0; trial < 50; trial++ {
			g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
				if v.Evidence == factorgraph.NoEvidence {
					assign.Set(id, int32(rng.Intn(2)))
				}
				return true
			})
			g.Vars(func(id factorgraph.VarID, v factorgraph.Variable) bool {
				want := g.ConditionalScores(id, assign, buf)
				s0, s1 := g.BinaryConditionalScores(id, assign)
				if s0 != want[0] || s1 != want[1] {
					t.Fatalf("spec %d trial %d var %d: fast path (%v, %v), generic (%v, %v)",
						si, trial, id, s0, s1, want[0], want[1])
				}
				return true
			})
		}
	}
}
