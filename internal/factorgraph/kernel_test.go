package factorgraph_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs/testutil"
)

// equivSpecs is the golden-equivalence corpus: the four canonical harness
// shapes plus denser/odder variants — larger categorical domains, heavy and
// zero evidence, many factors (duplicate kinds, negations, self-referential
// IsTrue), pruning masks — so every opcode and the generic fallback are hit.
func equivSpecs() []testutil.Spec {
	return []testutil.Spec{
		{Domain: 2, Seed: 101},
		{Domain: 2, Spatial: true, Seed: 102},
		{Domain: 3, Seed: 103},
		{Domain: 3, Spatial: true, PruneMask: true, Seed: 104},
		{Domain: 4, Vars: 7, Spatial: true, PruneMask: true, LogicalFactors: 25, SpatialPairs: 20, Seed: 105},
		{Domain: 2, Vars: 12, LogicalFactors: 40, EvidencePer1000: 500, Seed: 106},
		{Domain: 5, Vars: 6, Spatial: true, LogicalFactors: 18, SpatialPairs: 12, EvidencePer1000: 1, Seed: 107},
		{Domain: 2, Vars: 10, Spatial: true, LogicalFactors: 30, SpatialPairs: 25, EvidencePer1000: 350, Seed: 108},
	}
}

// randomAssignment fills every variable (evidence included — score evaluation
// must agree on any state, and mid-sweep states do hold arbitrary values).
func randomAssignment(g *factorgraph.Graph, rng *testutil.Rand) factorgraph.Assignment {
	a := make(factorgraph.Assignment, g.NumVars())
	for i := range a {
		a[i] = int32(rng.Intn(int(g.DomainOf(factorgraph.VarID(i)))))
	}
	return a
}

// TestKernelsMatchInterpretedBitForBit is the golden equivalence gate of the
// compiled sampling kernels: over the harness graph shapes and random
// assignments, ConditionalScores and BinaryConditionalScores must agree with
// the interpreted evaluators exactly (==, not within epsilon). This is what
// lets the compiled path inherit the TV-vs-exact statistical harness, the
// worker-invariance tests and old checkpoints without re-validation.
func TestKernelsMatchInterpretedBitForBit(t *testing.T) {
	for si, spec := range equivSpecs() {
		spec := spec
		t.Run(fmt.Sprintf("spec%d_d%d", si, spec.Domain), func(t *testing.T) {
			g, err := testutil.RandomGraph(spec)
			if err != nil {
				t.Fatalf("RandomGraph: %v", err)
			}
			k := g.Kernels()
			if k != g.Kernels() {
				t.Fatal("Kernels() is not cached")
			}
			st := k.Stats()
			if st.Ops == 0 || st.Vars != g.NumVars() || st.SlabBytes <= 0 {
				t.Fatalf("implausible kernel stats: %+v", st)
			}
			rng := testutil.NewRand(spec.Seed ^ 0xdead)
			wantBuf := make([]float64, 8)
			gotBuf := make([]float64, 8)
			for trial := 0; trial < 200; trial++ {
				assign := randomAssignment(g, rng)
				for v := factorgraph.VarID(0); int(v) < g.NumVars(); v++ {
					want := g.ConditionalScores(v, assign, wantBuf)
					got := k.ConditionalScores(v, assign, gotBuf)
					if len(want) != len(got) {
						t.Fatalf("var %d: domain mismatch %d vs %d", v, len(want), len(got))
					}
					for x := range want {
						if math.Float64bits(want[x]) != math.Float64bits(got[x]) {
							t.Fatalf("var %d candidate %d: interpreted %v (bits %x) vs compiled %v (bits %x)",
								v, x, want[x], math.Float64bits(want[x]), got[x], math.Float64bits(got[x]))
						}
					}
					if g.DomainOf(v) == 2 {
						w0, w1 := g.BinaryConditionalScores(v, assign)
						g0, g1 := k.BinaryConditionalScores(v, assign)
						if math.Float64bits(w0) != math.Float64bits(g0) ||
							math.Float64bits(w1) != math.Float64bits(g1) {
							t.Fatalf("var %d binary: interpreted (%v, %v) vs compiled (%v, %v)",
								v, w0, w1, g0, g1)
						}
					}
				}
			}
		})
	}
}

// TestKernelsWeightWriteThrough asserts that weight updates through
// SetFactorWeight/SetSpatialWeight are visible to already-compiled kernels
// without recompilation — the property weight learning relies on.
func TestKernelsWeightWriteThrough(t *testing.T) {
	g, err := testutil.RandomGraph(testutil.Spec{Domain: 2, Spatial: true, Seed: 42})
	if err != nil {
		t.Fatalf("RandomGraph: %v", err)
	}
	k := g.Kernels()
	rng := testutil.NewRand(7)
	assign := randomAssignment(g, rng)
	for f := int32(0); f < int32(g.NumFactors()); f++ {
		g.SetFactorWeight(f, g.FactorWeightOf(f)*1.7+0.3)
	}
	for s := int32(0); s < int32(g.NumSpatialFactors()); s++ {
		_, _, w := g.SpatialPair(s)
		g.SetSpatialWeight(s, w*2.1+0.1)
	}
	buf1 := make([]float64, 4)
	buf2 := make([]float64, 4)
	for v := factorgraph.VarID(0); int(v) < g.NumVars(); v++ {
		want := g.ConditionalScores(v, assign, buf1)
		got := k.ConditionalScores(v, assign, buf2)
		for x := range want {
			if math.Float64bits(want[x]) != math.Float64bits(got[x]) {
				t.Fatalf("var %d candidate %d after weight update: interpreted %v vs compiled %v",
					v, x, want[x], got[x])
			}
		}
	}
}

// TestKernelsGenericFallback covers shapes the specialized opcodes cannot
// express: arity-3 factors, a variable appearing on both sides of a factor,
// and unary equal — all must route through the generic op and still match.
func TestKernelsGenericFallback(t *testing.T) {
	b := factorgraph.NewBuilder()
	var ids []factorgraph.VarID
	for i := 0; i < 4; i++ {
		id, err := b.AddVariable(factorgraph.Variable{
			Name: fmt.Sprintf("q%d", i), Domain: 3, Evidence: factorgraph.NoEvidence,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := b.AddFactor(factorgraph.FactorImply, 0.7,
		[]factorgraph.VarID{ids[0], ids[1], ids[2]}, []bool{false, true, false}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFactor(factorgraph.FactorAnd, -0.4,
		[]factorgraph.VarID{ids[1], ids[1]}, []bool{false, true}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFactor(factorgraph.FactorEqual, 0.9,
		[]factorgraph.VarID{ids[2], ids[3], ids[0]}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddFactor(factorgraph.FactorEqual, 0.2,
		[]factorgraph.VarID{ids[3]}, nil); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	k := g.Kernels()
	if k.Stats().GenericOps == 0 {
		t.Fatal("expected generic fallback ops in this graph")
	}
	rng := testutil.NewRand(99)
	buf1 := make([]float64, 4)
	buf2 := make([]float64, 4)
	for trial := 0; trial < 100; trial++ {
		assign := randomAssignment(g, rng)
		for _, v := range ids {
			want := g.ConditionalScores(v, assign, buf1)
			got := k.ConditionalScores(v, assign, buf2)
			for x := range want {
				if math.Float64bits(want[x]) != math.Float64bits(got[x]) {
					t.Fatalf("var %d candidate %d: interpreted %v vs compiled %v", v, x, want[x], got[x])
				}
			}
		}
	}
}
