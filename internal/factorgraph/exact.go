package factorgraph

import (
	"fmt"
	"math"
)

// ExactMarginals computes the exact marginal distribution of every query
// variable by enumerating all joint assignments of the query variables
// (evidence variables stay fixed). It is exponential in the number of query
// variables and exists to provide ground truth for sampler tests and the
// KL-divergence experiment (paper Fig. 14). maxStates caps the enumeration
// size; exceeding it is an error.
//
// The result is indexed marginals[v][x] = P(v = x | evidence); evidence
// variables get a point mass on their observed value.
func ExactMarginals(g *Graph, maxStates int64) ([][]float64, error) {
	n := g.NumVars()
	var queries []VarID
	states := int64(1)
	for i := 0; i < n; i++ {
		v := g.Var(VarID(i))
		if v.Evidence == NoEvidence {
			queries = append(queries, VarID(i))
			states *= int64(v.Domain)
			if states > maxStates || states <= 0 {
				return nil, fmt.Errorf("factorgraph: exact inference needs %d+ states (cap %d)", states, maxStates)
			}
		}
	}
	assign := g.InitialAssignment()
	marginals := make([][]float64, n)
	for i := 0; i < n; i++ {
		marginals[i] = make([]float64, g.Var(VarID(i)).Domain)
	}
	// Enumerate with log-sum-exp for stability.
	energies := make([]float64, 0, states)
	assigns := make([][]int32, 0, states)
	var walk func(qi int)
	walk = func(qi int) {
		if qi == len(queries) {
			energies = append(energies, g.Energy(assign))
			assigns = append(assigns, append([]int32(nil), assign...))
			return
		}
		v := queries[qi]
		d := g.Var(v).Domain
		for x := int32(0); x < d; x++ {
			assign[v] = x
			walk(qi + 1)
		}
		assign[v] = 0
	}
	walk(0)
	maxE := math.Inf(-1)
	for _, e := range energies {
		if e > maxE {
			maxE = e
		}
	}
	var z float64
	weights := make([]float64, len(energies))
	for i, e := range energies {
		weights[i] = math.Exp(e - maxE)
		z += weights[i]
	}
	for i, a := range assigns {
		p := weights[i] / z
		for v := 0; v < n; v++ {
			marginals[v][a[v]] += p
		}
	}
	return marginals, nil
}

// TrueProbability is a convenience accessor: the marginal probability that a
// binary variable is true (value 1), i.e. the paper's "factual score".
func TrueProbability(marginals [][]float64, v VarID) float64 {
	m := marginals[v]
	if len(m) < 2 {
		return 0
	}
	return m[1]
}
