package factorgraph

import (
	"math"
	"time"
	"unsafe"
)

// This file implements the compiled sampling kernels: a compilation pass
// that flattens the graph's CSR adjacency into per-variable score programs,
// evaluated by specialized kernels instead of the generic satisfied /
// spatialEnergy walk. One Gibbs step on the interpreted path re-walks the
// factor var-lists, re-dispatches on FactorKind, and re-hashes into the
// allowedPairs map for every incident factor and candidate value; the
// compiled path replaces all of that with one contiguous slab of fixed-size
// ops per variable, resolved at compile time.
//
// Two invariants make the compiled path a drop-in replacement:
//
//   - Bit-for-bit equivalence: ops are laid out in exactly the interpreted
//     accumulation order (VarLogicalFactors, then VarSpatialPairs), each op
//     adds the same IEEE value under the same condition, so compiled and
//     interpreted scores are equal bit-for-bit, not just approximately —
//     seeds, checkpoints and the statistical harness carry over unchanged.
//   - Write-through weights: ops store *indices* into the graph's live
//     factorWeight/spatialW slices rather than copied values, so
//     SetFactorWeight/SetSpatialWeight (weight learning) take effect with no
//     recompilation.

// Kernel opcodes. Specialized codes cover the dominant ground-graph shapes
// (unary priors, binary logical factors, spatial pairs); everything else
// falls back to the interpreted evaluators for that one factor.
const (
	kopGeneric        uint8 = iota // any logical factor, via Graph.satisfied
	kopIsTrue                      // unary truth factor (istrue, 1-var and/or)
	kopImply2                      // 2-var imply, v on one side
	kopAnd2                        // 2-var and
	kopOr2                         // 2-var or
	kopEqual2                      // 2-var equal (value compare, neg ignored)
	kopSpatial                     // spatial pair, no pruning mask
	kopSpatialMasked               // spatial pair under an h×h allowed mask
	kopSpatialGeneric              // degenerate spatial pair, via spatialEnergy
)

// Flag bits in kop.bits.
const (
	kbNegV       uint8 = 1 << 0 // negation flag on v's slot
	kbNegO       uint8 = 1 << 1 // negation flag on the other endpoint's slot
	kbConsequent uint8 = 1 << 2 // kopImply2: v is the consequent
	kbEndpointB  uint8 = 1 << 2 // kopSpatialMasked: v is endpoint B
)

// kop is one fixed-stride program entry (16 bytes). Weight reads go through
// w into the graph's live weight slice — logical ops index factorWeight,
// spatial ops index spatialW — which is what makes weight learning
// write-through.
type kop struct {
	code uint8
	bits uint8
	mask int16 // kopSpatialMasked: index into Kernels.masks
	w    int32 // weight index (factor id or spatial pair id)
	a    VarID // other endpoint (binary logical and spatial ops)
	f    int32 // factor / spatial id for the generic fallbacks
}

// kmask is one interned co-occurrence pruning mask, resolved at compile time
// so evaluation never touches the allowedPairs map.
type kmask struct {
	mask []bool
	h    int32
}

// KernelStats describes a compiled program set (for observability).
type KernelStats struct {
	// BuildTime is the wall time of the compilation pass.
	BuildTime time.Duration
	// Vars is the number of per-variable programs.
	Vars int
	// Ops is the total op count across all programs.
	Ops int
	// GenericOps counts ops that fall back to the interpreted evaluators
	// (non-binary factors, duplicate-endpoint shapes). Ops−GenericOps ran
	// through a specialized kernel.
	GenericOps int
	// Masks is the number of interned pruning masks.
	Masks int
	// SlabBytes is the compiled footprint: op slab + offsets + mask table.
	SlabBytes int64
}

// Kernels holds the compiled per-variable score programs of one graph. A
// program is the contiguous ops[off[v]:off[v+1]] slab; evaluation walks it
// in order. Kernels are immutable after compilation and safe for concurrent
// use, like the graph itself.
type Kernels struct {
	g     *Graph
	off   []int32
	ops   []kop
	masks []kmask
	stats KernelStats
}

// Kernels returns the graph's compiled sampling kernels, compiling them on
// first use (subsequent calls return the cached program set). Safe for
// concurrent callers.
func (g *Graph) Kernels() *Kernels {
	g.kernOnce.Do(func() { g.kern = CompileKernels(g) })
	return g.kern
}

// CompileKernels compiles the graph into fresh per-variable score programs.
// Most callers want the cached (*Graph).Kernels instead.
func CompileKernels(g *Graph) *Kernels {
	start := time.Now()
	k := &Kernels{g: g}
	n := g.NumVars()
	k.off = make([]int32, n+1)
	k.ops = make([]kop, 0, len(g.varFactors)+len(g.varSpatial))
	maskIdx := map[int32]int16{}
	for v := 0; v < n; v++ {
		vid := VarID(v)
		for _, f := range g.VarLogicalFactors(vid) {
			k.ops = append(k.ops, compileFactor(g, vid, f))
		}
		for _, s := range g.VarSpatialPairs(vid) {
			k.ops = append(k.ops, k.compileSpatial(vid, s, maskIdx))
		}
		k.off[v+1] = int32(len(k.ops))
	}
	k.stats = KernelStats{
		Vars:  n,
		Ops:   len(k.ops),
		Masks: len(k.masks),
		SlabBytes: int64(len(k.ops))*int64(unsafe.Sizeof(kop{})) +
			int64(len(k.off))*int64(unsafe.Sizeof(int32(0))),
	}
	for i := range k.ops {
		switch k.ops[i].code {
		case kopGeneric, kopSpatialGeneric:
			k.stats.GenericOps++
		}
	}
	for i := range k.masks {
		k.stats.SlabBytes += int64(len(k.masks[i].mask))
	}
	k.stats.BuildTime = time.Since(start)
	return k
}

// Stats returns the compilation statistics.
func (k *Kernels) Stats() KernelStats { return k.stats }

// compileFactor lowers one (variable, logical factor) incidence to an op.
// Shapes the specialized kernels cannot represent exactly — arity ≥ 3, v
// appearing in more than one slot, unary equal — keep the generic code,
// which evaluates through Graph.satisfied and is correct for everything.
func compileFactor(g *Graph, v VarID, f int32) kop {
	op := kop{code: kopGeneric, w: f, f: f}
	vars, neg := g.FactorVars(f)
	occ, pos := 0, -1
	for i, u := range vars {
		if u == v {
			occ++
			pos = i
		}
	}
	if occ != 1 {
		return op
	}
	switch len(vars) {
	case 1:
		switch g.factorKind[f] {
		case FactorIsTrue, FactorAnd, FactorOr:
			op.code = kopIsTrue
			if neg[0] {
				op.bits |= kbNegV
			}
		}
	case 2:
		other := vars[1-pos]
		var bits uint8
		if neg[pos] {
			bits |= kbNegV
		}
		if neg[1-pos] {
			bits |= kbNegO
		}
		switch g.factorKind[f] {
		case FactorImply:
			op.code, op.a, op.bits = kopImply2, other, bits
			if pos == 1 {
				op.bits |= kbConsequent
			}
		case FactorAnd:
			op.code, op.a, op.bits = kopAnd2, other, bits
		case FactorOr:
			op.code, op.a, op.bits = kopOr2, other, bits
		case FactorEqual:
			op.code, op.a = kopEqual2, other
		}
	}
	return op
}

// compileSpatial lowers one (variable, spatial pair) incidence to an op,
// interning the relation's pruning mask so evaluation is map-free.
func (k *Kernels) compileSpatial(v VarID, s int32, maskIdx map[int32]int16) kop {
	g := k.g
	a, b := g.spatialA[s], g.spatialB[s]
	op := kop{code: kopSpatialGeneric, w: s, f: s}
	if a == b {
		return op
	}
	other := a
	if other == v {
		other = b
	}
	rel := g.vars[a].Relation
	mask := g.allowedPairs[rel]
	if mask == nil {
		op.code, op.a = kopSpatial, other
		return op
	}
	mi, ok := maskIdx[rel]
	if !ok {
		if len(k.masks) > math.MaxInt16 {
			return op
		}
		mi = int16(len(k.masks))
		k.masks = append(k.masks, kmask{mask: mask, h: g.domainOf[rel]})
		maskIdx[rel] = mi
	}
	op.code, op.a, op.mask = kopSpatialMasked, other, mi
	if v != a {
		op.bits |= kbEndpointB
	}
	return op
}

// OpInfo is the human-readable decode of one compiled op — the score
// provenance a serving /v1/explain response reports. Weight reads go
// through the graph's live weight slices, so an explanation always shows
// the weights inference is actually using (learned weights included).
type OpInfo struct {
	// Kind names the op: "istrue", "imply", "and", "or", "equal",
	// "generic", "spatial", "spatial_masked" or "spatial_generic".
	Kind string
	// Weight is the op's current live weight (logical factor weight, or the
	// spatial pair's distance-derived weight).
	Weight float64
	// Other is the other endpoint of a binary/spatial op, or NoVar.
	Other VarID
	// ID is the factor id (logical ops) or spatial pair id (spatial ops) —
	// the index grounding's FactorRule maps back to a rule name.
	ID int32
	// Spatial marks spatial-pair ops (ID indexes spatial pairs, not
	// factors).
	Spatial bool
	// Generic marks ops evaluated by the interpreted fallback.
	Generic bool
	// Masked marks spatial ops evaluated under a co-occurrence pruning
	// mask.
	Masked bool
}

// NoVar is the OpInfo.Other sentinel for ops with no second endpoint.
const NoVar VarID = -1

// kopNames maps opcodes to their OpInfo.Kind spellings.
var kopNames = [...]string{
	kopGeneric:        "generic",
	kopIsTrue:         "istrue",
	kopImply2:         "imply",
	kopAnd2:           "and",
	kopOr2:            "or",
	kopEqual2:         "equal",
	kopSpatial:        "spatial",
	kopSpatialMasked:  "spatial_masked",
	kopSpatialGeneric: "spatial_generic",
}

// VarProgram decodes one variable's compiled score program: every factor
// and spatial pair contributing to its conditional, in the exact
// accumulation order the samplers use. The result is freshly allocated.
func (k *Kernels) VarProgram(v VarID) []OpInfo {
	g := k.g
	ops := k.ops[k.off[v]:k.off[v+1]]
	out := make([]OpInfo, len(ops))
	for i := range ops {
		op := &ops[i]
		info := OpInfo{Kind: kopNames[op.code], ID: op.f, Other: NoVar}
		switch op.code {
		case kopSpatial, kopSpatialMasked, kopSpatialGeneric:
			info.Spatial = true
			info.Weight = g.spatialW[op.w]
			info.Masked = op.code == kopSpatialMasked
			info.Generic = op.code == kopSpatialGeneric
			if op.code == kopSpatialGeneric {
				// The generic op does not pre-resolve the endpoint; recover
				// it from the pair table.
				a, b := g.spatialA[op.f], g.spatialB[op.f]
				if a == v {
					info.Other = b
				} else {
					info.Other = a
				}
			} else {
				info.Other = op.a
			}
		default:
			info.Weight = g.factorWeight[op.w]
			info.Generic = op.code == kopGeneric
			switch op.code {
			case kopImply2, kopAnd2, kopOr2, kopEqual2:
				info.Other = op.a
			case kopGeneric:
				// Report the first non-v endpoint of the interpreted factor,
				// when it has exactly one other distinct variable.
				vars, _ := g.FactorVars(op.f)
				for _, u := range vars {
					if u != v {
						if info.Other != NoVar && info.Other != u {
							info.Other = NoVar
							break
						}
						info.Other = u
					}
				}
			}
		}
		out[i] = info
	}
	return out
}

// ConditionalScores is the compiled equivalent of Graph.ConditionalScores:
// same signature, same accumulation order, bit-identical results. Like the
// interpreted path it re-reads neighbour values per candidate, so concurrent
// writers (hogwild) are observed with the same granularity.
func (k *Kernels) ConditionalScores(v VarID, assign Assignment, buf []float64) []float64 {
	g := k.g
	domain := int(g.vars[v].Domain)
	buf = buf[:domain]
	ops := k.ops[k.off[v]:k.off[v+1]]
	fw, sw := g.factorWeight, g.spatialW
	for x := 0; x < domain; x++ {
		xv := int32(x)
		var e float64
		for i := range ops {
			op := &ops[i]
			switch op.code {
			case kopIsTrue:
				if (xv != 0) != (op.bits&kbNegV != 0) {
					e += fw[op.w]
				}
			case kopImply2:
				tv := (xv != 0) != (op.bits&kbNegV != 0)
				to := (assign.Get(op.a) != 0) != (op.bits&kbNegO != 0)
				var sat bool
				if op.bits&kbConsequent != 0 {
					sat = !to || tv
				} else {
					sat = !tv || to
				}
				if sat {
					e += fw[op.w]
				}
			case kopAnd2:
				if (xv != 0) != (op.bits&kbNegV != 0) &&
					(assign.Get(op.a) != 0) != (op.bits&kbNegO != 0) {
					e += fw[op.w]
				}
			case kopOr2:
				if (xv != 0) != (op.bits&kbNegV != 0) ||
					(assign.Get(op.a) != 0) != (op.bits&kbNegO != 0) {
					e += fw[op.w]
				}
			case kopEqual2:
				if xv == assign.Get(op.a) {
					e += fw[op.w]
				}
			case kopGeneric:
				if g.satisfied(op.f, assign, v, xv) {
					e += fw[op.w]
				}
			case kopSpatial:
				if xv == assign.Get(op.a) {
					e += sw[op.w]
				} else {
					e -= sw[op.w]
				}
			case kopSpatialMasked:
				m := &k.masks[op.mask]
				ov := assign.Get(op.a)
				tj, tk := xv, ov
				if op.bits&kbEndpointB != 0 {
					tj, tk = ov, xv
				}
				if m.mask[tj*m.h+tk] {
					if xv == ov {
						e += sw[op.w]
					} else {
						e -= sw[op.w]
					}
				}
			case kopSpatialGeneric:
				e += g.spatialEnergy(op.f, assign, v, xv)
			}
		}
		buf[x] = e
	}
	return buf
}

// BinaryConditionalScores is the compiled equivalent of
// Graph.BinaryConditionalScores: one pass over the program accumulating both
// candidates, bit-identical to the interpreted path (each factor contributes
// to s0 and s1 in program order under the same conditions).
func (k *Kernels) BinaryConditionalScores(v VarID, assign Assignment) (s0, s1 float64) {
	g := k.g
	ops := k.ops[k.off[v]:k.off[v+1]]
	fw, sw := g.factorWeight, g.spatialW
	for i := range ops {
		op := &ops[i]
		switch op.code {
		case kopIsTrue:
			// truth(0) = neg, truth(1) = !neg: exactly one candidate scores.
			if op.bits&kbNegV != 0 {
				s0 += fw[op.w]
			} else {
				s1 += fw[op.w]
			}
		case kopImply2:
			w := fw[op.w]
			to := (assign.Get(op.a) != 0) != (op.bits&kbNegO != 0)
			negV := op.bits&kbNegV != 0
			if op.bits&kbConsequent != 0 {
				// sat(x) = !to || truthV(x)
				if !to {
					s0 += w
					s1 += w
				} else if negV {
					s0 += w
				} else {
					s1 += w
				}
			} else {
				// sat(x) = !truthV(x) || to
				if to {
					s0 += w
					s1 += w
				} else if negV {
					s1 += w
				} else {
					s0 += w
				}
			}
		case kopAnd2:
			// sat(x) = truthV(x) && to: scores one candidate when to holds.
			if (assign.Get(op.a) != 0) != (op.bits&kbNegO != 0) {
				if op.bits&kbNegV != 0 {
					s0 += fw[op.w]
				} else {
					s1 += fw[op.w]
				}
			}
		case kopOr2:
			// sat(x) = truthV(x) || to.
			if (assign.Get(op.a) != 0) != (op.bits&kbNegO != 0) {
				s0 += fw[op.w]
				s1 += fw[op.w]
			} else if op.bits&kbNegV != 0 {
				s0 += fw[op.w]
			} else {
				s1 += fw[op.w]
			}
		case kopEqual2:
			// The other endpoint may be categorical: values ≥ 2 match neither
			// binary candidate.
			switch assign.Get(op.a) {
			case 0:
				s0 += fw[op.w]
			case 1:
				s1 += fw[op.w]
			}
		case kopGeneric:
			w := fw[op.w]
			if g.satisfied(op.f, assign, v, 0) {
				s0 += w
			}
			if g.satisfied(op.f, assign, v, 1) {
				s1 += w
			}
		case kopSpatial:
			w := sw[op.w]
			if assign.Get(op.a) == 0 {
				s0 += w
				s1 -= w
			} else {
				s0 -= w
				s1 += w
			}
		case kopSpatialMasked:
			m := &k.masks[op.mask]
			w := sw[op.w]
			ov := assign.Get(op.a)
			for x := int32(0); x < 2; x++ {
				tj, tk := x, ov
				if op.bits&kbEndpointB != 0 {
					tj, tk = ov, x
				}
				if !m.mask[tj*m.h+tk] {
					continue
				}
				e := w
				if x != ov {
					e = -w
				}
				if x == 0 {
					s0 += e
				} else {
					s1 += e
				}
			}
		case kopSpatialGeneric:
			s0 += g.spatialEnergy(op.f, assign, v, 0)
			s1 += g.spatialEnergy(op.f, assign, v, 1)
		}
	}
	return s0, s1
}
