package factorgraph

import (
	"fmt"
	"sort"
)

// Builder accumulates variables and factors, then Finalize produces an
// immutable Graph with CSR adjacency. The grounding module is the main
// client.
type Builder struct {
	vars []Variable

	factorKind   []FactorKind
	factorWeight []float64
	factorOff    []int64
	factorVars   []VarID
	factorNeg    []bool

	spatialA, spatialB []VarID
	spatialW           []float64
	spatialSeen        map[[2]VarID]bool

	allowedPairs map[int32][]bool
	domainOf     map[int32]int32
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		factorOff:    []int64{0},
		spatialSeen:  map[[2]VarID]bool{},
		allowedPairs: map[int32][]bool{},
		domainOf:     map[int32]int32{},
	}
}

// AddVariable adds a ground atom and returns its ID.
func (b *Builder) AddVariable(v Variable) (VarID, error) {
	if v.Domain < 2 {
		return 0, fmt.Errorf("factorgraph: variable %q domain %d < 2", v.Name, v.Domain)
	}
	if v.Evidence != NoEvidence && (v.Evidence < 0 || v.Evidence >= v.Domain) {
		return 0, fmt.Errorf("factorgraph: variable %q evidence %d outside domain %d", v.Name, v.Evidence, v.Domain)
	}
	id := VarID(len(b.vars))
	b.vars = append(b.vars, v)
	return id, nil
}

// NumVars returns the variables added so far.
func (b *Builder) NumVars() int { return len(b.vars) }

// AddFactor adds a logical factor over vars; neg may be nil (no negations)
// or parallel to vars.
func (b *Builder) AddFactor(kind FactorKind, weight float64, vars []VarID, neg []bool) error {
	if len(vars) == 0 {
		return fmt.Errorf("factorgraph: factor needs at least one variable")
	}
	if neg != nil && len(neg) != len(vars) {
		return fmt.Errorf("factorgraph: negation flags length %d != vars length %d", len(neg), len(vars))
	}
	if kind == FactorIsTrue && len(vars) != 1 {
		return fmt.Errorf("factorgraph: istrue factor must be unary")
	}
	if kind == FactorImply && len(vars) < 2 {
		return fmt.Errorf("factorgraph: imply factor needs at least two variables")
	}
	for _, v := range vars {
		if int(v) >= len(b.vars) || v < 0 {
			return fmt.Errorf("factorgraph: factor references unknown variable %d", v)
		}
	}
	b.factorKind = append(b.factorKind, kind)
	b.factorWeight = append(b.factorWeight, weight)
	b.factorVars = append(b.factorVars, vars...)
	if neg == nil {
		neg = make([]bool, len(vars))
	}
	b.factorNeg = append(b.factorNeg, neg...)
	b.factorOff = append(b.factorOff, int64(len(b.factorVars)))
	return nil
}

// AddSpatialPair adds a spatial factor between two atoms of the same
// spatial variable relation with the given distance-derived weight.
// Duplicate pairs (in either order) are rejected.
func (b *Builder) AddSpatialPair(a, c VarID, w float64) error {
	if a == c {
		return fmt.Errorf("factorgraph: spatial self-pair on %d", a)
	}
	if int(a) >= len(b.vars) || int(c) >= len(b.vars) || a < 0 || c < 0 {
		return fmt.Errorf("factorgraph: spatial pair references unknown variable")
	}
	va, vc := b.vars[a], b.vars[c]
	if va.Relation != vc.Relation {
		return fmt.Errorf("factorgraph: spatial pair crosses relations")
	}
	if !va.HasLoc || !vc.HasLoc {
		return fmt.Errorf("factorgraph: spatial pair on non-spatial atoms")
	}
	if w < 0 {
		return fmt.Errorf("factorgraph: spatial weight must be non-negative, got %v", w)
	}
	key := [2]VarID{a, c}
	if a > c {
		key = [2]VarID{c, a}
	}
	if b.spatialSeen[key] {
		return fmt.Errorf("factorgraph: duplicate spatial pair (%d, %d)", a, c)
	}
	b.spatialSeen[key] = true
	b.spatialA = append(b.spatialA, a)
	b.spatialB = append(b.spatialB, c)
	b.spatialW = append(b.spatialW, w)
	return nil
}

// SpatialPair is one spatial factor for AddSpatialPairs: two atoms of the
// same spatial relation and the distance-derived weight.
type SpatialPair struct {
	A, B VarID
	W    float64
}

// AddSpatialPairs bulk-appends spatial factors with the same per-pair
// validation as AddSpatialPair but WITHOUT duplicate detection: the caller
// must guarantee each unordered pair appears at most once across all
// AddSpatialPair/AddSpatialPairs calls. The grounding sweep guarantees this
// structurally (canonical-ordered emission — each pair is emitted by
// exactly one atom's neighbourhood), which keeps the bulk path free of the
// seen-map's per-pair allocation and hashing.
func (b *Builder) AddSpatialPairs(pairs []SpatialPair) error {
	for _, p := range pairs {
		if p.A == p.B {
			return fmt.Errorf("factorgraph: spatial self-pair on %d", p.A)
		}
		if int(p.A) >= len(b.vars) || int(p.B) >= len(b.vars) || p.A < 0 || p.B < 0 {
			return fmt.Errorf("factorgraph: spatial pair references unknown variable")
		}
		va, vc := b.vars[p.A], b.vars[p.B]
		if va.Relation != vc.Relation {
			return fmt.Errorf("factorgraph: spatial pair crosses relations")
		}
		if !va.HasLoc || !vc.HasLoc {
			return fmt.Errorf("factorgraph: spatial pair on non-spatial atoms")
		}
		if p.W < 0 {
			return fmt.Errorf("factorgraph: spatial weight must be non-negative, got %v", p.W)
		}
	}
	if cap(b.spatialA)-len(b.spatialA) < len(pairs) {
		grow := func(dst []VarID) []VarID {
			out := make([]VarID, len(dst), len(dst)+len(pairs))
			copy(out, dst)
			return out
		}
		b.spatialA = grow(b.spatialA)
		b.spatialB = grow(b.spatialB)
		w := make([]float64, len(b.spatialW), len(b.spatialW)+len(pairs))
		copy(w, b.spatialW)
		b.spatialW = w
	}
	for _, p := range pairs {
		b.spatialA = append(b.spatialA, p.A)
		b.spatialB = append(b.spatialB, p.B)
		b.spatialW = append(b.spatialW, p.W)
	}
	return nil
}

// SetAllowedPairs installs the co-occurrence pruning mask for a relation's
// categorical domain (Section IV-C): mask[i*h+j] reports whether the
// (i, j) domain-value pair generates a spatial factor. A nil mask allows
// everything.
func (b *Builder) SetAllowedPairs(relation int32, h int32, mask []bool) error {
	if mask != nil && int32(len(mask)) != h*h {
		return fmt.Errorf("factorgraph: mask length %d != h² = %d", len(mask), h*h)
	}
	b.domainOf[relation] = h
	if mask == nil {
		delete(b.allowedPairs, relation)
		return nil
	}
	b.allowedPairs[relation] = mask
	return nil
}

// Finalize builds the immutable graph with adjacency indexes.
func (b *Builder) Finalize() (*Graph, error) {
	g := &Graph{
		vars:         b.vars,
		factorKind:   b.factorKind,
		factorWeight: b.factorWeight,
		factorOff:    b.factorOff,
		factorVars:   b.factorVars,
		factorNeg:    b.factorNeg,
		spatialA:     b.spatialA,
		spatialB:     b.spatialB,
		spatialW:     b.spatialW,
		allowedPairs: b.allowedPairs,
		domainOf:     b.domainOf,
	}
	n := len(g.vars)
	// CSR adjacency for logical factors.
	counts := make([]int64, n+1)
	for f := int32(0); f < int32(len(g.factorKind)); f++ {
		vars, _ := g.FactorVars(f)
		for _, v := range dedupVars(vars) {
			counts[v+1]++
		}
	}
	for i := 1; i <= n; i++ {
		counts[i] += counts[i-1]
	}
	g.varFactorOff = counts
	g.varFactors = make([]int32, counts[n])
	cursor := make([]int64, n)
	for f := int32(0); f < int32(len(g.factorKind)); f++ {
		vars, _ := g.FactorVars(f)
		for _, v := range dedupVars(vars) {
			g.varFactors[g.varFactorOff[v]+cursor[v]] = f
			cursor[v]++
		}
	}
	// CSR adjacency for spatial pairs.
	scounts := make([]int64, n+1)
	for s := range g.spatialA {
		scounts[g.spatialA[s]+1]++
		scounts[g.spatialB[s]+1]++
	}
	for i := 1; i <= n; i++ {
		scounts[i] += scounts[i-1]
	}
	g.varSpatialOff = scounts
	g.varSpatial = make([]int32, scounts[n])
	scursor := make([]int64, n)
	for s := range g.spatialA {
		for _, v := range []VarID{g.spatialA[s], g.spatialB[s]} {
			g.varSpatial[g.varSpatialOff[v]+scursor[v]] = int32(s)
			scursor[v]++
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// dedupVars returns the distinct variables of a factor edge list (a factor
// may mention a variable twice, e.g. X => X; adjacency should list it once).
func dedupVars(vars []VarID) []VarID {
	if len(vars) <= 1 {
		return vars
	}
	sorted := append([]VarID(nil), vars...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
