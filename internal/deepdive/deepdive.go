// Package deepdive implements the paper's baseline: a DeepDive-mode
// pipeline over the same substrates. DeepDive [36] treats every spatial
// predicate as a boolean condition (satisfied or not), generates no spatial
// factors, and infers with standard parallel Gibbs sampling [46], [47].
//
// Two transformations produce DeepDive behaviour from a Sya program:
//
//   - StripSpatial removes @spatial annotations, so grounding yields the
//     plain ground factor graph of Eq. 1 — boolean spatial predicates in
//     rule bodies still evaluate (DeepDive can compute distances through a
//     materialized UDF relation, Fig. 7 bottom; our engine evaluates them
//     directly, which is outcome-equivalent and favours the baseline's
//     grounding time).
//
//   - ExpandStepRules implements the Fig. 10 workaround: one inference rule
//     with a distance predicate becomes n band rules ("10 ≤ distance < 20"
//     etc.) whose weights step down with distance, approximating Sya's
//     continuous distance decay at the cost of n× the grounding work.
package deepdive

import (
	"fmt"
	"strings"

	"repro/internal/ddlog"
	"repro/internal/storage"
	"repro/internal/weighting"
)

// StripSpatial returns a copy of the program with all @spatial annotations
// removed: grounding it produces no spatial factors, exactly DeepDive's
// model. The underlying rule set is untouched, matching the paper's "two
// equivalent DDlog programs" methodology (Section VI-A).
func StripSpatial(prog *ddlog.Program) (*ddlog.Program, error) {
	cp := &ddlog.Program{
		Consts:      prog.Consts,
		Derivations: prog.Derivations,
		Rules:       prog.Rules,
		Functions:   prog.Functions,
		Apps:        prog.Apps,
	}
	for _, rel := range prog.Relations {
		r := *rel
		r.Spatial = ""
		cp.Relations = append(cp.Relations, &r)
	}
	if err := cp.Validate(); err != nil {
		return nil, fmt.Errorf("deepdive: stripped program invalid: %w", err)
	}
	return cp, nil
}

// findDistanceCond locates the (single) compared distance predicate of a
// rule: distance(a, b [, metric]) op D with a constant bound.
func findDistanceCond(rule *ddlog.InferenceRule) (idx int, bound float64, err error) {
	idx = -1
	for i, c := range rule.Conds {
		if c.L.Kind != ddlog.CondCallExpr || c.L.Call != "distance" {
			continue
		}
		if c.Op != ddlog.CondLt && c.Op != ddlog.CondLe {
			continue
		}
		if c.R.Kind != ddlog.CondTermExpr || c.R.Term.Kind != ddlog.TermConst {
			continue
		}
		b, ferr := c.R.Term.Const.AsFloat()
		if ferr != nil {
			continue
		}
		if idx >= 0 {
			return -1, 0, fmt.Errorf("deepdive: rule %s has multiple distance predicates", rule.Label)
		}
		idx, bound = i, b
	}
	if idx < 0 {
		return -1, 0, fmt.Errorf("deepdive: rule %s has no compared distance predicate", rule.Label)
	}
	return idx, bound, nil
}

// ExpandStepRules returns a copy of the program in which the labelled rule
// is replaced by n step-function band rules over [0, maxDist): band i
// covers lo ≤ distance < hi and carries the step function's weight for that
// band (large weights at small distances, per the Fig. 10 setup). maxDist
// defaults to the rule's own distance bound when ≤ 0. Weights decay
// linearly from maxWeight.
func ExpandStepRules(prog *ddlog.Program, label string, n int, maxDist, maxWeight float64) (*ddlog.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("deepdive: need at least one band, got %d", n)
	}
	return expandStepRules(prog, label, n, maxDist, func(nBands int, dist float64) (weighting.Step, error) {
		return weighting.UniformSteps(nBands, dist, maxWeight)
	})
}

// ExpandStepRulesWeighted is ExpandStepRules with band weights sampled from
// an arbitrary weighing function at each band's midpoint — the natural way
// to approximate Sya's continuous spatial decay with DeepDive rules, and
// what the Fig. 10 experiment sweeps: more bands → a finer piecewise-
// constant approximation of the decay.
func ExpandStepRulesWeighted(prog *ddlog.Program, label string, n int, maxDist float64, fn weighting.Func) (*ddlog.Program, error) {
	if n <= 0 {
		return nil, fmt.Errorf("deepdive: need at least one band, got %d", n)
	}
	return expandStepRules(prog, label, n, maxDist, func(nBands int, dist float64) (weighting.Step, error) {
		breaks := make([]float64, nBands)
		weights := make([]float64, nBands)
		for i := 0; i < nBands; i++ {
			breaks[i] = dist * float64(i+1) / float64(nBands)
			mid := dist * (float64(i) + 0.5) / float64(nBands)
			weights[i] = fn.Weight(mid)
		}
		return weighting.NewStep(breaks, weights)
	})
}

func expandStepRules(prog *ddlog.Program, label string, n int, maxDist float64,
	build func(n int, maxDist float64) (weighting.Step, error)) (*ddlog.Program, error) {
	var target *ddlog.InferenceRule
	for _, r := range prog.Rules {
		if strings.EqualFold(r.Label, label) {
			target = r
			break
		}
	}
	if target == nil {
		return nil, fmt.Errorf("deepdive: no rule labelled %s", label)
	}
	condIdx, bound, err := findDistanceCond(target)
	if err != nil {
		return nil, err
	}
	if maxDist <= 0 {
		maxDist = bound
	}
	step, err := build(n, maxDist)
	if err != nil {
		return nil, err
	}
	cp := &ddlog.Program{
		Relations:   prog.Relations,
		Consts:      prog.Consts,
		Derivations: prog.Derivations,
		Functions:   prog.Functions,
		Apps:        prog.Apps,
	}
	for _, r := range prog.Rules {
		if r != target {
			cp.Rules = append(cp.Rules, r)
			continue
		}
		lo := 0.0
		distCall := r.Conds[condIdx].L
		for i := 0; i < n; i++ {
			hi := step.Breaks[i]
			band := *r
			band.Label = fmt.Sprintf("%s_band%d", r.Label, i+1)
			band.Weight = step.Weights[i]
			band.HasWeight = true
			band.Conds = append([]ddlog.Cond(nil), r.Conds...)
			// Replace the original distance predicate with the band bounds.
			band.Conds[condIdx] = ddlog.Cond{
				Op: ddlog.CondLt,
				L:  distCall,
				R:  constExpr(storage.Float(hi)),
			}
			if i > 0 {
				band.Conds = append(band.Conds, ddlog.Cond{
					Op: ddlog.CondGe,
					L:  distCall,
					R:  constExpr(storage.Float(lo)),
				})
			}
			cp.Rules = append(cp.Rules, &band)
			lo = hi
		}
	}
	if err := cp.Validate(); err != nil {
		return nil, fmt.Errorf("deepdive: expanded program invalid: %w", err)
	}
	return cp, nil
}

func constExpr(v storage.Value) ddlog.CondExpr {
	return ddlog.CondExpr{
		Kind: ddlog.CondTermExpr,
		Term: ddlog.Term{Kind: ddlog.TermConst, Const: v},
	}
}
