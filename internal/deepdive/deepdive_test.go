package deepdive

import (
	"strings"
	"testing"

	"repro/internal/ddlog"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/grounding"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/weighting"
)

const gwdbSrc = `
Well (id bigint, location point, arsenic_ratio double).
@spatial(exp)
IsSafe? (id bigint, location point).
D1: IsSafe(W, L) = NULL :- Well(W, L, _).
R1: @weight(0.7)
IsSafe(W1, L1) => IsSafe(W2, L2) :-
    Well(W1, L1, R1), Well(W2, L2, R2)
    [distance(L1, L2) < 50, R1 < 0.2, R2 < 0.2].
`

func compile(t *testing.T, src string) *ddlog.Program {
	t.Helper()
	p, err := ddlog.ParseAndValidate(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func wellsDB(t *testing.T, prog *ddlog.Program) *storage.DB {
	t.Helper()
	db := storage.NewDB()
	rel, _ := prog.Relation("Well")
	wells, err := db.Create(translate.SchemaFor(rel))
	if err != nil {
		t.Fatal(err)
	}
	rows := []storage.Row{
		{storage.Int(1), storage.Geom(geom.Pt(0, 0)), storage.Float(0.1)},
		{storage.Int(2), storage.Geom(geom.Pt(10, 0)), storage.Float(0.15)},
		{storage.Int(3), storage.Geom(geom.Pt(30, 0)), storage.Float(0.05)},
		{storage.Int(4), storage.Geom(geom.Pt(500, 0)), storage.Float(0.1)},
	}
	if err := wells.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestStripSpatialRemovesSpatialFactors(t *testing.T) {
	prog := compile(t, gwdbSrc)
	stripped, err := StripSpatial(prog)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := stripped.Relation("IsSafe")
	if rel.Spatial != "" {
		t.Fatal("annotation not stripped")
	}
	// Original untouched.
	orig, _ := prog.Relation("IsSafe")
	if orig.Spatial != "exp" {
		t.Fatal("original program mutated")
	}
	// Grounding the stripped program yields no spatial pairs; the original
	// yields some.
	gSya, err := grounding.New(prog, wellsDB(t, prog), grounding.Options{
		Weighting: weighting.NewRegistry(20, 1),
	}).Ground()
	if err != nil {
		t.Fatal(err)
	}
	gDD, err := grounding.New(stripped, wellsDB(t, prog), grounding.Options{
		Weighting: weighting.NewRegistry(20, 1),
	}).Ground()
	if err != nil {
		t.Fatal(err)
	}
	if gSya.Stats.SpatialPairs == 0 {
		t.Error("Sya grounding should produce spatial pairs")
	}
	if gDD.Stats.SpatialPairs != 0 {
		t.Errorf("DeepDive grounding produced %d spatial pairs", gDD.Stats.SpatialPairs)
	}
	// Logical factors identical across modes (same rules).
	if gSya.Stats.LogicalFactors != gDD.Stats.LogicalFactors {
		t.Errorf("logical factors differ: %d vs %d", gSya.Stats.LogicalFactors, gDD.Stats.LogicalFactors)
	}
}

func TestExpandStepRules(t *testing.T) {
	prog := compile(t, gwdbSrc)
	expanded, err := ExpandStepRules(prog, "R1", 5, 0, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(expanded.Rules) != 5 {
		t.Fatalf("rules = %d, want 5", len(expanded.Rules))
	}
	// Band 1: distance < 10, weight 0.9; band 5: 40 ≤ distance < 50,
	// weight 0.18.
	b1 := expanded.Rules[0]
	if b1.Label != "R1_band1" || b1.Weight != 0.9 {
		t.Errorf("band1 = %s w=%v", b1.Label, b1.Weight)
	}
	if len(b1.Conds) != 3 { // dist<10, R1<0.2, R2<0.2
		t.Errorf("band1 conds = %d", len(b1.Conds))
	}
	b5 := expanded.Rules[4]
	if len(b5.Conds) != 4 { // adds dist >= 40
		t.Errorf("band5 conds = %d", len(b5.Conds))
	}
	if b5.Weight >= b1.Weight {
		t.Errorf("weights not decaying: %v vs %v", b5.Weight, b1.Weight)
	}
	// Bands partition the original groundings: total factors across bands
	// equal the single rule's factors.
	db1 := wellsDB(t, prog)
	gOrig, err := grounding.New(prog, db1, grounding.Options{Weighting: weighting.NewRegistry(20, 1)}).Ground()
	if err != nil {
		t.Fatal(err)
	}
	db2 := wellsDB(t, prog)
	gExp, err := grounding.New(expanded, db2, grounding.Options{Weighting: weighting.NewRegistry(20, 1)}).Ground()
	if err != nil {
		t.Fatal(err)
	}
	if gOrig.Stats.LogicalFactors != gExp.Stats.LogicalFactors {
		t.Errorf("band factors %d != original %d", gExp.Stats.LogicalFactors, gOrig.Stats.LogicalFactors)
	}
	// More rules ground → more SQL executions; stats carry per-band counts.
	bands := 0
	for name := range gExp.Stats.RuleFactors {
		if strings.HasPrefix(name, "R1_band") {
			bands++
		}
	}
	if bands == 0 {
		t.Error("no band rules grounded")
	}
}

func TestExpandStepRulesWeighted(t *testing.T) {
	prog := compile(t, gwdbSrc)
	fn := weighting.Exponential{Bandwidth: 20, Scale: 1}
	expanded, err := ExpandStepRulesWeighted(prog, "R1", 4, 80, fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(expanded.Rules) != 4 {
		t.Fatalf("rules = %d", len(expanded.Rules))
	}
	// Band weights sample the decay at band midpoints: 10, 30, 50, 70.
	for i, r := range expanded.Rules {
		mid := 80 * (float64(i) + 0.5) / 4
		want := fn.Weight(mid)
		if r.Weight != want {
			t.Errorf("band %d weight = %v, want %v", i+1, r.Weight, want)
		}
	}
	// Monotone decreasing.
	for i := 1; i < len(expanded.Rules); i++ {
		if expanded.Rules[i].Weight >= expanded.Rules[i-1].Weight {
			t.Errorf("weights not decreasing at band %d", i)
		}
	}
	if _, err := ExpandStepRulesWeighted(prog, "R1", 0, 80, fn); err == nil {
		t.Error("zero bands should fail")
	}
	if _, err := ExpandStepRulesWeighted(prog, "nope", 3, 80, fn); err == nil {
		t.Error("unknown rule should fail")
	}
}

func TestExpandStepRulesErrors(t *testing.T) {
	prog := compile(t, gwdbSrc)
	if _, err := ExpandStepRules(prog, "R1", 0, 0, 1); err == nil {
		t.Error("zero bands should fail")
	}
	if _, err := ExpandStepRules(prog, "nope", 3, 0, 1); err == nil {
		t.Error("unknown rule should fail")
	}
	noDist := compile(t, `
A (id bigint).
V? (id bigint).
R1: @weight(1) V(I) :- A(I).
`)
	if _, err := ExpandStepRules(noDist, "R1", 3, 0, 1); err == nil {
		t.Error("rule without distance predicate should fail")
	}
}

func TestDeepDivePipelineEndToEnd(t *testing.T) {
	// Full baseline: strip, ground, hogwild-sample.
	prog := compile(t, gwdbSrc)
	stripped, err := StripSpatial(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := grounding.New(stripped, wellsDB(t, prog), grounding.Options{}).Ground()
	if err != nil {
		t.Fatal(err)
	}
	h := gibbs.NewHogwild(res.Graph, 3, 2)
	h.RunEpochs(500)
	m := h.Marginals()
	if len(m) != res.Stats.Vars {
		t.Fatalf("marginals = %d", len(m))
	}
}
