package storage

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/geom"
)

// sensorSchema is a small spatially-indexed relation for concurrency tests.
func sensorSchema() Schema {
	return Schema{Name: "Sensor", Cols: []Column{
		{Name: "id", Kind: KindInt},
		{Name: "loc", Kind: KindGeom, GeomType: geom.TypePoint},
		{Name: "label", Kind: KindString},
	}}
}

func sensorRow(i int) Row {
	return Row{Int(int64(i)), Geom(geom.Point{X: float64(i % 32), Y: float64(i / 32)}), Str(fmt.Sprintf("w%d", i))}
}

// TestConcurrentReadsDuringUpsert drives every read path (Len, Row, Scan,
// LookupHash with and without an index, SearchSpatial with and without an
// R-tree, HasSpatialIndex) while a writer keeps appending — the serving
// layer's evidence-upsert shape. Run under -race this pins down the
// RW-mutex guarantees on the rows slice and in-place index updates.
func TestConcurrentReadsDuringUpsert(t *testing.T) {
	for _, indexed := range []bool{false, true} {
		name := "unindexed"
		if indexed {
			name = "indexed"
		}
		t.Run(name, func(t *testing.T) {
			tbl, err := NewTable(sensorSchema())
			if err != nil {
				t.Fatal(err)
			}
			const seedRows = 64
			for i := 0; i < seedRows; i++ {
				if err := tbl.Append(sensorRow(i)); err != nil {
					t.Fatal(err)
				}
			}
			if indexed {
				if err := tbl.BuildHashIndex("id"); err != nil {
					t.Fatal(err)
				}
				if err := tbl.BuildSpatialIndex("loc"); err != nil {
					t.Fatal(err)
				}
			}

			const appends = 512
			var wg sync.WaitGroup
			stop := make(chan struct{})

			// Writer: one upsert stream growing the table (and, when
			// indexed, inserting into the hash buckets and R-tree in place).
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer close(stop)
				for i := seedRows; i < seedRows+appends; i++ {
					if err := tbl.Append(sensorRow(i)); err != nil {
						t.Errorf("append %d: %v", i, err)
						return
					}
				}
			}()

			// Readers: every public read path, looping until the writer is done.
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					window := geom.NewRect(geom.Point{X: -1, Y: -1}, geom.Point{X: 40, Y: 40})
					for {
						select {
						case <-stop:
							return
						default:
						}
						n := tbl.Len()
						if n > 0 {
							row := tbl.Row(n - 1)
							if len(row) != 3 {
								t.Errorf("torn row: %v", row)
								return
							}
						}
						seen := 0
						tbl.Scan(func(id int, row Row) bool {
							if row[0].IsNull() {
								t.Errorf("scan: torn row at id %d", id)
								return false
							}
							seen++
							return true
						})
						if seen < seedRows {
							t.Errorf("scan saw %d rows, want ≥ %d", seen, seedRows)
							return
						}
						ids, err := tbl.LookupHash("id", Int(int64(r)))
						if err != nil || len(ids) != 1 {
							t.Errorf("lookup id=%d: ids=%v err=%v", r, ids, err)
							return
						}
						if _, err := tbl.SearchSpatial("loc", window); err != nil {
							t.Errorf("spatial search: %v", err)
							return
						}
						tbl.HasSpatialIndex("loc")
					}
				}(r)
			}
			wg.Wait()

			if got := tbl.Len(); got != seedRows+appends {
				t.Fatalf("final len = %d, want %d", got, seedRows+appends)
			}
			// Post-quiescence: the in-place index updates must agree with a
			// from-scratch rebuild.
			lastID := int64(seedRows + appends - 1)
			ids, err := tbl.LookupHash("id", Int(lastID))
			if err != nil || len(ids) != 1 {
				t.Fatalf("lookup of last row: ids=%v err=%v", ids, err)
			}
			all, err := tbl.SearchSpatial("loc", geom.NewRect(geom.Point{X: -1, Y: -1}, geom.Point{X: 1e9, Y: 1e9}))
			if err != nil {
				t.Fatal(err)
			}
			if indexed && len(all) != seedRows+appends {
				t.Fatalf("spatial search found %d rows, want %d", len(all), seedRows+appends)
			}
		})
	}
}

// TestConcurrentIndexBuildDuringReads rebuilds indexes while readers run:
// the serving layer re-grounds against live tables, which re-bulk-loads
// R-trees.
func TestConcurrentIndexBuildDuringReads(t *testing.T) {
	tbl, err := NewTable(sensorSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if err := tbl.Append(sensorRow(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 50; i++ {
			if err := tbl.BuildSpatialIndex("loc"); err != nil {
				t.Errorf("build spatial: %v", err)
				return
			}
			if err := tbl.BuildHashIndex("id"); err != nil {
				t.Errorf("build hash: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tbl.SearchSpatial("loc", geom.NewRect(geom.Point{}, geom.Point{X: 16, Y: 16})); err != nil {
					t.Errorf("search: %v", err)
					return
				}
				if _, err := tbl.LookupHash("id", Int(7)); err != nil {
					t.Errorf("lookup: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		col  Column
		cell string
		want Value
		err  bool
	}{
		{Column{Name: "a", Kind: KindInt}, "42", Int(42), false},
		{Column{Name: "a", Kind: KindInt}, "  7 ", Int(7), false},
		{Column{Name: "a", Kind: KindInt}, "x", Null, true},
		{Column{Name: "a", Kind: KindFloat}, "2.5", Float(2.5), false},
		{Column{Name: "a", Kind: KindBool}, "true", Bool(true), false},
		{Column{Name: "a", Kind: KindBool}, "0", Bool(false), false},
		{Column{Name: "a", Kind: KindBool}, "maybe", Null, true},
		{Column{Name: "a", Kind: KindString}, "hello", Str("hello"), false},
		{Column{Name: "a", Kind: KindString}, "", Null, false},
		{Column{Name: "a", Kind: KindInt}, "NULL", Null, false},
		{Column{Name: "a", Kind: KindGeom, GeomType: geom.TypePoint}, "POINT (1 2)", Geom(geom.Point{X: 1, Y: 2}), false},
		{Column{Name: "a", Kind: KindGeom}, "POINT (bad)", Null, true},
	}
	for _, c := range cases {
		got, err := ParseCell(c.col, c.cell)
		if c.err {
			if err == nil {
				t.Errorf("ParseCell(%v, %q): want error, got %v", c.col.Kind, c.cell, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCell(%v, %q): %v", c.col.Kind, c.cell, err)
			continue
		}
		if !got.Equal(c.want) && !(got.IsNull() && c.want.IsNull()) {
			t.Errorf("ParseCell(%v, %q) = %v, want %v", c.col.Kind, c.cell, got, c.want)
		}
	}
}
