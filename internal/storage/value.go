// Package storage provides the embedded relational substrate that Sya
// grounds against (paper Section IV-B). The paper executes translated rule
// queries on PostgreSQL/PostGIS; this package plays that role: typed
// schemas, in-memory tables, hash indexes on scalar columns, and R-tree
// indexes on spatial columns.
package storage

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Kind enumerates the column/value types supported by the store. These
// mirror the DDlog schema types of the paper's language module: bigint,
// double, bool, text, plus the four spatial types (point, rectangle,
// polygon, linestring) carried as Geom values.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindBool
	KindString
	KindGeom
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "bigint"
	case KindFloat:
		return "double"
	case KindBool:
		return "bool"
	case KindString:
		return "text"
	case KindGeom:
		return "geometry"
	default:
		return fmt.Sprintf("storage.Kind(%d)", uint8(k))
	}
}

// Value is a tagged-union runtime value. The zero Value is NULL.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	G    geom.Geometry
}

// Null is the NULL value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Float returns a double value.
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	if v {
		return Value{Kind: KindBool, I: 1}
	}
	return Value{Kind: KindBool}
}

// Str returns a text value.
func Str(v string) Value { return Value{Kind: KindString, S: v} }

// Geom returns a spatial value.
func Geom(g geom.Geometry) Value { return Value{Kind: KindGeom, G: g} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsBool reports the value as a boolean; only KindBool values are truthy
// candidates.
func (v Value) AsBool() (bool, error) {
	if v.Kind != KindBool {
		return false, fmt.Errorf("storage: %s is not bool", v.Kind)
	}
	return v.I != 0, nil
}

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), nil
	case KindFloat:
		return v.F, nil
	default:
		return 0, fmt.Errorf("storage: %s is not numeric", v.Kind)
	}
}

// AsInt returns the value as int64; floats must be integral.
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case KindInt:
		return v.I, nil
	case KindFloat:
		if v.F == float64(int64(v.F)) {
			return int64(v.F), nil
		}
		return 0, fmt.Errorf("storage: non-integral double %v", v.F)
	default:
		return 0, fmt.Errorf("storage: %s is not integer", v.Kind)
	}
}

// AsGeom returns the spatial payload.
func (v Value) AsGeom() (geom.Geometry, error) {
	if v.Kind != KindGeom || v.G == nil {
		return nil, fmt.Errorf("storage: %s is not geometry", v.Kind)
	}
	return v.G, nil
}

// String renders the value for diagnostics and CSV output.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindString:
		return v.S
	case KindGeom:
		return geom.MarshalWKT(v.G)
	default:
		return "?"
	}
}

// Equal reports deep equality of two values. Numeric values compare across
// int/float kinds; geometries compare by WKT rendering (sufficient for the
// exact geometries the grounding pipeline produces).
func (v Value) Equal(o Value) bool {
	if v.Kind == KindNull || o.Kind == KindNull {
		return v.Kind == o.Kind
	}
	if isNumeric(v.Kind) && isNumeric(o.Kind) {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindBool:
		return (v.I != 0) == (o.I != 0)
	case KindString:
		return v.S == o.S
	case KindGeom:
		return geom.MarshalWKT(v.G) == geom.MarshalWKT(o.G)
	default:
		return v.I == o.I && v.F == o.F
	}
}

// Compare orders two comparable values: -1, 0, +1. Geometries and booleans
// are not ordered.
func (v Value) Compare(o Value) (int, error) {
	if isNumeric(v.Kind) && isNumeric(o.Kind) {
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.Kind == KindString && o.Kind == KindString {
		switch {
		case v.S < o.S:
			return -1, nil
		case v.S > o.S:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("storage: cannot order %s against %s", v.Kind, o.Kind)
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// ParseCell converts one textual cell (CSV field, JSON string, query
// parameter) to a Value of the column's kind. Empty cells and the literal
// "null" (any case) load as NULL; spatial columns parse WKT; booleans
// accept true/false/t/f/1/0/yes/no. This is the single text→Value path
// shared by the CLI loaders and the serving API.
func ParseCell(col Column, cell string) (Value, error) {
	cell = strings.TrimSpace(cell)
	if cell == "" || strings.EqualFold(cell, "null") {
		return Null, nil
	}
	switch col.Kind {
	case KindInt:
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return Null, err
		}
		return Int(v), nil
	case KindFloat:
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return Null, err
		}
		return Float(v), nil
	case KindBool:
		switch strings.ToLower(cell) {
		case "true", "t", "1", "yes":
			return Bool(true), nil
		case "false", "f", "0", "no":
			return Bool(false), nil
		}
		return Null, fmt.Errorf("bad bool %q", cell)
	case KindString:
		return Str(cell), nil
	case KindGeom:
		g, err := geom.ParseWKT(cell)
		if err != nil {
			return Null, err
		}
		return Geom(g), nil
	default:
		return Null, fmt.Errorf("unsupported column kind %v", col.Kind)
	}
}

// hashKey returns a map key for hash-join/index buckets.
func (v Value) hashKey() string {
	switch v.Kind {
	case KindNull:
		return "\x00"
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		// Normalize integral floats so Int(3) and Float(3) bucket together,
		// matching Equal's cross-kind numeric semantics.
		if v.F == float64(int64(v.F)) {
			return "i" + strconv.FormatInt(int64(v.F), 10)
		}
		return "f" + strconv.FormatFloat(v.F, 'b', -1, 64)
	case KindBool:
		if v.I != 0 {
			return "bt"
		}
		return "bf"
	case KindString:
		return "s" + v.S
	case KindGeom:
		return "g" + geom.MarshalWKT(v.G)
	default:
		return "?"
	}
}
