package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func wellSchema() Schema {
	return Schema{
		Name: "Well",
		Cols: []Column{
			{Name: "id", Kind: KindInt},
			{Name: "location", Kind: KindGeom, GeomType: geom.TypePoint},
			{Name: "arsenic_ratio", Kind: KindFloat},
			{Name: "safe", Kind: KindBool},
		},
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v, err := Int(5).AsInt(); err != nil || v != 5 {
		t.Errorf("Int: %v %v", v, err)
	}
	if v, err := Float(2.5).AsFloat(); err != nil || v != 2.5 {
		t.Errorf("Float: %v %v", v, err)
	}
	if v, err := Int(5).AsFloat(); err != nil || v != 5 {
		t.Errorf("Int as float: %v %v", v, err)
	}
	if v, err := Float(3).AsInt(); err != nil || v != 3 {
		t.Errorf("integral float as int: %v %v", v, err)
	}
	if _, err := Float(3.5).AsInt(); err == nil {
		t.Error("non-integral float as int should fail")
	}
	if b, err := Bool(true).AsBool(); err != nil || !b {
		t.Errorf("Bool: %v %v", b, err)
	}
	if _, err := Str("x").AsBool(); err == nil {
		t.Error("string as bool should fail")
	}
	if g, err := Geom(geom.Pt(1, 2)).AsGeom(); err != nil || g != geom.Pt(1, 2) {
		t.Errorf("Geom: %v %v", g, err)
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull mismatch")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":        Null,
		"42":          Int(42),
		"2.5":         Float(2.5),
		"true":        Bool(true),
		"false":       Bool(false),
		"hi":          Str("hi"),
		"POINT (1 2)": Geom(geom.Pt(1, 2)),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Kind, got, want)
		}
	}
}

func TestValueEqualAndCompare(t *testing.T) {
	if !Int(3).Equal(Float(3)) {
		t.Error("numeric cross-kind equality failed")
	}
	if Int(3).Equal(Str("3")) {
		t.Error("int should not equal string")
	}
	if !Null.Equal(Null) || Null.Equal(Int(0)) {
		t.Error("null equality mismatch")
	}
	if !Geom(geom.Pt(1, 2)).Equal(Geom(geom.Pt(1, 2))) {
		t.Error("geom equality failed")
	}
	if c, err := Int(1).Compare(Float(2)); err != nil || c != -1 {
		t.Errorf("Compare = %d %v", c, err)
	}
	if c, err := Str("b").Compare(Str("a")); err != nil || c != 1 {
		t.Errorf("string Compare = %d %v", c, err)
	}
	if _, err := Bool(true).Compare(Bool(false)); err == nil {
		t.Error("bool compare should fail")
	}
}

func TestValueHashKeyConsistentWithEqualProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Float(float64(b))
		if va.Equal(vb) && va.hashKey() != vb.hashKey() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSchemaValidate(t *testing.T) {
	good := wellSchema()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schema{
		{Name: "", Cols: []Column{{Name: "a", Kind: KindInt}}},
		{Name: "x"},
		{Name: "x", Cols: []Column{{Name: "a", Kind: KindInt}, {Name: "A", Kind: KindInt}}},
		{Name: "x", Cols: []Column{{Name: "", Kind: KindInt}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schema %d validated", i)
		}
	}
	if good.ColIndex("LOCATION") != 1 {
		t.Error("ColIndex should be case-insensitive")
	}
	if good.ColIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestTableAppendAndScan(t *testing.T) {
	tb, err := NewTable(wellSchema())
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Int(1), Geom(geom.Pt(0, 0)), Float(0.1), Bool(true)},
		{Int(2), Geom(geom.Pt(10, 10)), Float(0.3), Bool(false)},
		{Int(3), Geom(geom.Pt(20, 0)), Null, Null},
	}
	if err := tb.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 {
		t.Fatalf("Len = %d", tb.Len())
	}
	// Type errors.
	if err := tb.Append(Row{Int(4), Str("oops"), Float(0), Bool(false)}); err == nil {
		t.Error("wrong kind should fail")
	}
	if err := tb.Append(Row{Int(4)}); err == nil {
		t.Error("short row should fail")
	}
	// Numeric coercion int->float column.
	if err := tb.Append(Row{Int(4), Geom(geom.Pt(1, 1)), Int(1), Bool(true)}); err != nil {
		t.Errorf("int into double column should be accepted: %v", err)
	}
	count := 0
	tb.Scan(func(id int, r Row) bool { count++; return true })
	if count != 4 {
		t.Errorf("scan visited %d rows", count)
	}
	count = 0
	tb.Scan(func(id int, r Row) bool { count++; return false })
	if count != 1 {
		t.Errorf("early-stop scan visited %d rows", count)
	}
}

func TestHashIndexLookup(t *testing.T) {
	tb, _ := NewTable(Schema{Name: "T", Cols: []Column{
		{Name: "k", Kind: KindInt}, {Name: "v", Kind: KindString},
	}})
	for i := 0; i < 100; i++ {
		if err := tb.Append(Row{Int(int64(i % 10)), Str("row")}); err != nil {
			t.Fatal(err)
		}
	}
	// Scan-based lookup before any index.
	ids, err := tb.LookupHash("k", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("scan lookup = %d rows", len(ids))
	}
	if err := tb.BuildHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	ids2, err := tb.LookupHash("k", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids2) != 10 {
		t.Fatalf("indexed lookup = %d rows", len(ids2))
	}
	// Index stays fresh across appends.
	if err := tb.Append(Row{Int(3), Str("new")}); err != nil {
		t.Fatal(err)
	}
	ids3, _ := tb.LookupHash("k", Int(3))
	if len(ids3) != 11 {
		t.Fatalf("post-append lookup = %d rows", len(ids3))
	}
	if _, err := tb.LookupHash("missing", Int(0)); err == nil {
		t.Error("lookup on missing column should fail")
	}
	if err := tb.BuildHashIndex("missing"); err == nil {
		t.Error("index on missing column should fail")
	}
}

func TestSpatialIndexSearch(t *testing.T) {
	tb, _ := NewTable(wellSchema())
	rng := rand.New(rand.NewSource(9))
	n := 500
	for i := 0; i < n; i++ {
		p := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if err := tb.Append(Row{Int(int64(i)), Geom(p), Float(rng.Float64()), Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	window := geom.NewRect(geom.Pt(20, 20), geom.Pt(40, 40))
	scanIDs, err := tb.SearchSpatial("location", window)
	if err != nil {
		t.Fatal(err)
	}
	if tb.HasSpatialIndex("location") {
		t.Error("index should not exist yet")
	}
	if err := tb.BuildSpatialIndex("location"); err != nil {
		t.Fatal(err)
	}
	if !tb.HasSpatialIndex("location") {
		t.Error("index should exist")
	}
	idxIDs, err := tb.SearchSpatial("location", window)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanIDs) != len(idxIDs) {
		t.Fatalf("scan=%d idx=%d", len(scanIDs), len(idxIDs))
	}
	for i := range scanIDs {
		if scanIDs[i] != idxIDs[i] {
			t.Fatalf("id mismatch at %d: %d vs %d", i, scanIDs[i], idxIDs[i])
		}
	}
	// Index must track appends.
	if err := tb.Append(Row{Int(999), Geom(geom.Pt(30, 30)), Float(0), Bool(true)}); err != nil {
		t.Fatal(err)
	}
	afterIDs, _ := tb.SearchSpatial("location", window)
	if len(afterIDs) != len(idxIDs)+1 {
		t.Fatalf("post-append search = %d, want %d", len(afterIDs), len(idxIDs)+1)
	}
	if err := tb.BuildSpatialIndex("arsenic_ratio"); err == nil {
		t.Error("spatial index on scalar column should fail")
	}
	if err := tb.BuildSpatialIndex("nope"); err == nil {
		t.Error("spatial index on missing column should fail")
	}
}

func TestDBLifecycle(t *testing.T) {
	db := NewDB()
	if _, err := db.Create(wellSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create(wellSchema()); err == nil {
		t.Error("duplicate create should fail")
	}
	tb, err := db.Table("WELL") // case-insensitive
	if err != nil || tb == nil {
		t.Fatalf("Table: %v", err)
	}
	if _, err := db.Table("nope"); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := db.Create(Schema{Name: "Alpha", Cols: []Column{{Name: "a", Kind: KindInt}}}); err != nil {
		t.Fatal(err)
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "Alpha" || names[1] != "Well" {
		t.Errorf("Names = %v", names)
	}
	if err := db.Drop("well"); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("well"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestNullsAllowedInRows(t *testing.T) {
	tb, _ := NewTable(wellSchema())
	if err := tb.Append(Row{Int(1), Null, Null, Null}); err != nil {
		t.Fatalf("nulls should be allowed: %v", err)
	}
	// Spatial index skips NULL geometry.
	if err := tb.BuildSpatialIndex("location"); err != nil {
		t.Fatal(err)
	}
	ids, err := tb.SearchSpatial("location", geom.NewRect(geom.Pt(-1000, -1000), geom.Pt(1000, 1000)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("null geometry indexed: %v", ids)
	}
}
