package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/geom"
	"repro/internal/index/rtree"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
	// GeomType refines KindGeom columns with the declared DDlog spatial
	// type (point, rectangle, polygon, linestring).
	GeomType geom.Type
}

// Schema is an ordered set of named, typed columns.
type Schema struct {
	Name string
	Cols []Column
}

// ColIndex returns the position of a column by case-insensitive name, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Validate checks schema well-formedness: non-empty name, at least one
// column, unique column names.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("storage: schema has no name")
	}
	if len(s.Cols) == 0 {
		return fmt.Errorf("storage: relation %s has no columns", s.Name)
	}
	seen := map[string]bool{}
	for _, c := range s.Cols {
		key := strings.ToLower(c.Name)
		if c.Name == "" {
			return fmt.Errorf("storage: relation %s has an unnamed column", s.Name)
		}
		if seen[key] {
			return fmt.Errorf("storage: relation %s: duplicate column %q", s.Name, c.Name)
		}
		seen[key] = true
	}
	return nil
}

// Row is one tuple, positionally matching the schema columns.
type Row []Value

// Table is an in-memory relation with optional secondary indexes.
type Table struct {
	schema Schema
	rows   []Row

	mu      sync.RWMutex
	hashIdx map[int]map[string][]int // column -> value bucket -> row ids
	rtrees  map[int]*rtree.Tree      // geom column -> R-tree over row ids
}

// NewTable creates an empty table for the schema.
func NewTable(s Schema) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Table{
		schema:  s,
		hashIdx: map[int]map[string][]int{},
		rtrees:  map[int]*rtree.Tree{},
	}, nil
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// snapshot returns the current rows slice header under the read lock.
// Rows are append-only and immutable once appended, so the returned
// prefix stays consistent while concurrent Appends grow the table — this
// is what lets readers (scans, lookups, the serving layer) run against a
// table that an upsert is extending.
func (t *Table) snapshot() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// checkRow validates a row against the schema; NULLs are allowed in any
// column (the paper's derivation rules create variables with NULL labels).
func (t *Table) checkRow(r Row) error {
	if len(r) != len(t.schema.Cols) {
		return fmt.Errorf("storage: %s: row has %d values, schema has %d columns",
			t.schema.Name, len(r), len(t.schema.Cols))
	}
	for i, v := range r {
		c := t.schema.Cols[i]
		if v.IsNull() {
			continue
		}
		ok := v.Kind == c.Kind || (isNumeric(v.Kind) && isNumeric(c.Kind))
		if !ok {
			return fmt.Errorf("storage: %s.%s: value kind %s does not match column kind %s",
				t.schema.Name, c.Name, v.Kind, c.Kind)
		}
	}
	return nil
}

// Append adds a row, updating secondary indexes. The row is stored by
// reference; callers must not mutate it afterwards.
func (t *Table) Append(r Row) error {
	if err := t.checkRow(r); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.rows)
	t.rows = append(t.rows, r)
	for col, buckets := range t.hashIdx {
		k := r[col].hashKey()
		buckets[k] = append(buckets[k], id)
	}
	for col, tree := range t.rtrees {
		if g, err := r[col].AsGeom(); err == nil {
			tree.Insert(rtree.Item{Rect: g.Bounds(), Data: int64(id)})
		}
	}
	return nil
}

// AppendAll adds many rows, failing on the first invalid one.
func (t *Table) AppendAll(rows []Row) error {
	for i, r := range rows {
		if err := t.Append(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// Row returns the i-th row.
func (t *Table) Row(i int) Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[i]
}

// Scan calls fn for each row id and row; returning false stops the scan.
// The scan sees a consistent prefix: rows appended concurrently may or may
// not be visited, but fn never observes a torn row.
func (t *Table) Scan(fn func(id int, r Row) bool) {
	for i, r := range t.snapshot() {
		if !fn(i, r) {
			return
		}
	}
}

// BuildHashIndex creates (or rebuilds) a hash index on the named column.
// The grounding queries use it for equi-joins.
func (t *Table) BuildHashIndex(col string) error {
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("storage: %s has no column %q", t.schema.Name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	buckets := map[string][]int{}
	for id, r := range t.rows {
		k := r[ci].hashKey()
		buckets[k] = append(buckets[k], id)
	}
	t.hashIdx[ci] = buckets
	return nil
}

// LookupHash returns the ids of rows whose column equals v, using the hash
// index if present, else a scan.
func (t *Table) LookupHash(col string, v Value) ([]int, error) {
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: %s has no column %q", t.schema.Name, col)
	}
	t.mu.RLock()
	buckets, ok := t.hashIdx[ci]
	var ids []int
	if ok {
		// Copy the bucket under the lock: Append grows buckets in place.
		ids = append([]int(nil), buckets[v.hashKey()]...)
	}
	rows := t.rows
	t.mu.RUnlock()
	if ok {
		// Defensive re-check: hash keys for numerics are normalized, but
		// keep equality authoritative.
		out := make([]int, 0, len(ids))
		for _, id := range ids {
			if rows[id][ci].Equal(v) {
				out = append(out, id)
			}
		}
		return out, nil
	}
	var out []int
	for id, r := range rows {
		if r[ci].Equal(v) {
			out = append(out, id)
		}
	}
	return out, nil
}

// BuildSpatialIndex creates (or rebuilds) an R-tree over the named geometry
// column — the paper's "on-fly spatial indices" (Section IV-B). Rows with
// NULL geometry are skipped.
func (t *Table) BuildSpatialIndex(col string) error {
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return fmt.Errorf("storage: %s has no column %q", t.schema.Name, col)
	}
	if t.schema.Cols[ci].Kind != KindGeom {
		return fmt.Errorf("storage: %s.%s is not a geometry column", t.schema.Name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	items := make([]rtree.Item, 0, len(t.rows))
	for id, r := range t.rows {
		g, err := r[ci].AsGeom()
		if err != nil {
			continue
		}
		items = append(items, rtree.Item{Rect: g.Bounds(), Data: int64(id)})
	}
	t.rtrees[ci] = rtree.Bulk(items)
	return nil
}

// HasSpatialIndex reports whether an R-tree exists for the column.
func (t *Table) HasSpatialIndex(col string) bool {
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rtrees[ci] != nil
}

// SearchSpatial returns ids of rows whose geometry bounding box intersects
// the query window, using the R-tree if present (else scanning). Callers
// must apply the exact predicate afterwards — this is the filter step of
// the classic filter-and-refine spatial query plan.
func (t *Table) SearchSpatial(col string, window geom.Rect) ([]int, error) {
	ci := t.schema.ColIndex(col)
	if ci < 0 {
		return nil, fmt.Errorf("storage: %s has no column %q", t.schema.Name, col)
	}
	// The whole search runs under the read lock: Append inserts into the
	// R-tree in place, so the traversal must exclude writers (concurrent
	// readers still proceed in parallel).
	t.mu.RLock()
	tree := t.rtrees[ci]
	if tree != nil {
		var ids []int
		tree.Search(window, func(it rtree.Item) bool {
			ids = append(ids, int(it.Data))
			return true
		})
		t.mu.RUnlock()
		sort.Ints(ids)
		return ids, nil
	}
	rows := t.rows
	t.mu.RUnlock()
	var ids []int
	for id, r := range rows {
		g, err := r[ci].AsGeom()
		if err != nil {
			continue
		}
		if g.Bounds().Intersects(window) {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// DB is a named collection of tables: the "database" the grounding module
// evaluates translated rule queries against.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// Create creates a new table; it fails if the name is taken.
func (db *DB) Create(s Schema) (*Table, error) {
	t, err := NewTable(s)
	if err != nil {
		return nil, err
	}
	key := strings.ToLower(s.Name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[key]; exists {
		return nil, fmt.Errorf("storage: table %s already exists", s.Name)
	}
	db.tables[key] = t
	return t, nil
}

// Table returns a table by case-insensitive name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no table %q", name)
	}
	return t, nil
}

// Drop removes a table.
func (db *DB) Drop(name string) error {
	key := strings.ToLower(name)
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[key]; !ok {
		return fmt.Errorf("storage: no table %q", name)
	}
	delete(db.tables, key)
	return nil
}

// Names returns the sorted table names.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.schema.Name)
	}
	sort.Strings(names)
	return names
}
