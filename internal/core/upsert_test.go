package core

import (
	"context"
	"testing"

	"repro/internal/datagen"
	"repro/internal/geom"
	"repro/internal/storage"
)

func evidenceRow(c datagen.County, hasEbola bool) storage.Row {
	return storage.Row{storage.Int(c.ID), storage.Geom(c.Loc), storage.Bool(hasEbola)}
}

func TestUpsertEvidenceDeltaPath(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 11})
	defer s.Close()
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(); err != nil {
		t.Fatal(err)
	}
	counties := datagen.EbolaCounties()
	bong := counties[2]
	before, ok := s.scores().TrueProb("HasEbola", countyVals(bong))
	if !ok {
		t.Fatal("no batch score for Bong")
	}
	if before > 0.99 {
		t.Fatalf("Bong batch score %f already saturated; test is vacuous", before)
	}

	stats, err := s.UpsertEvidence(context.Background(), "CountyEvidence", []storage.Row{evidenceRow(bong, true)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Structural {
		t.Fatalf("unexpected structural fallback: %s", stats.Reason)
	}
	if stats.Rows != 1 || stats.Pins != 1 || stats.SkippedPins != 0 {
		t.Fatalf("stats = %+v, want 1 row / 1 pin / 0 skipped", stats)
	}
	scores, err := s.InferIncremental(2000)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := scores.TrueProb("HasEbola", countyVals(bong))
	if !ok {
		t.Fatal("no score for Bong after upsert")
	}
	if got != 1 {
		t.Errorf("pinned Bong score = %f, want exactly 1 (point mass)", got)
	}
}

func TestUpsertEvidenceConflictSkipsPin(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 11})
	defer s.Close()
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	bong := datagen.EbolaCounties()[2]
	ctx := context.Background()
	first, err := s.UpsertEvidence(ctx, "CountyEvidence", []storage.Row{evidenceRow(bong, true)})
	if err != nil {
		t.Fatal(err)
	}
	if first.Pins != 1 {
		t.Fatalf("first upsert stats = %+v, want one pin", first)
	}
	// A conflicting second upsert re-derives Bong's atom, but the first pin
	// wins — exactly the batch grounder's dedup of conflicting evidence.
	second, err := s.UpsertEvidence(ctx, "CountyEvidence", []storage.Row{evidenceRow(bong, false)})
	if err != nil {
		t.Fatal(err)
	}
	if second.Structural || second.Pins != 0 || second.SkippedPins != 1 {
		t.Fatalf("second upsert stats = %+v, want 0 pins / 1 skipped", second)
	}
	scores, err := s.InferIncremental(500)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := scores.TrueProb("HasEbola", countyVals(bong)); got != 1 {
		t.Errorf("Bong score = %f, want 1 (first pin kept)", got)
	}
}

func TestUpsertEvidenceStructuralFallback(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 11})
	defer s.Close()
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	// A brand-new county changes the variable-atom universe: the delta
	// grounder must refuse the patch and the system must re-ground.
	row := storage.Row{storage.Int(9), storage.Geom(geom.Pt(-9.8, 6.8)), storage.Bool(true)}
	stats, err := s.UpsertEvidence(context.Background(), "County", []storage.Row{row})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Structural {
		t.Fatalf("stats = %+v, want structural", stats)
	}
	if s.Grounding().Stats.Vars != 5 {
		t.Errorf("re-ground vars = %d, want 5", s.Grounding().Stats.Vars)
	}
	if s.pinned != nil {
		t.Error("pin set must reset after a structural re-ground")
	}
	// The rebuilt system still infers end to end.
	if _, err := s.Infer(); err != nil {
		t.Fatal(err)
	}
}

func TestUpsertEvidenceDeepDiveIsStructural(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineDeepDive, Seed: 11})
	defer s.Close()
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	bong := datagen.EbolaCounties()[2]
	stats, err := s.UpsertEvidence(context.Background(), "CountyEvidence", []storage.Row{evidenceRow(bong, true)})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Structural {
		t.Fatalf("stats = %+v, want structural (deepdive has no delta path)", stats)
	}
	if _, err := s.Infer(); err != nil {
		t.Fatal(err)
	}
}

func TestUpsertEvidenceRequiresGround(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya})
	defer s.Close()
	if _, err := s.UpsertEvidence(context.Background(), "CountyEvidence", nil); err == nil {
		t.Fatal("upsert before Ground must fail")
	}
}
