package core

import (
	"context"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs/testutil"
)

// localTol mirrors the serving-equivalence tolerance: two Monte-Carlo
// estimates of the same marginal land within this TV distance.
const localTol = 0.08

// localWorkload is one datagen-backed system for the budget sweep.
type localWorkload struct {
	name     string
	build    func(t *testing.T) *System
	queryRel string
}

func localWorkloads(t *testing.T) []localWorkload {
	t.Helper()
	wells := datagen.Wells(datagen.WellsConfig{N: 48, Seed: 5, Extent: 170})
	raster := datagen.Raster(datagen.RasterConfig{Side: 6, Seed: 9, Extent: 6 * 30.0 / 22.0})
	nycCell := raster.Config.Extent / float64(raster.Config.Side)
	return []localWorkload{
		{
			name: "gwdb",
			build: func(t *testing.T) *System {
				t.Helper()
				s := NewSystem(Config{
					Engine:           EngineSya,
					Metric:           geom.Euclidean,
					Bandwidth:        50,
					SupportRadius:    60,
					MaxNeighbors:     8,
					PyramidLevels:    5,
					Epochs:           8000,
					Seed:             7,
					SkipFactorTables: true,
				})
				if err := s.LoadProgram(datagen.GWDBProgram); err != nil {
					t.Fatal(err)
				}
				rows, evidence := wells.Rows()
				if err := s.LoadRows("Well", rows); err != nil {
					t.Fatal(err)
				}
				if err := s.LoadRows("WellEvidence", evidence); err != nil {
					t.Fatal(err)
				}
				return s
			},
			queryRel: "IsSafe",
		},
		{
			name: "nyccas",
			build: func(t *testing.T) *System {
				t.Helper()
				s := NewSystem(Config{
					Engine:           EngineSya,
					Metric:           geom.Euclidean,
					Bandwidth:        2 * nycCell,
					SupportRadius:    4 * nycCell,
					PyramidLevels:    5,
					Epochs:           8000,
					Seed:             7,
					SkipFactorTables: true,
				})
				if err := s.LoadProgram(datagen.NYCCASProgram); err != nil {
					t.Fatal(err)
				}
				cells, evidence := raster.Rows()
				if err := s.LoadRows("Cell", cells); err != nil {
					t.Fatal(err)
				}
				if err := s.LoadRows("CellEvidence", evidence); err != nil {
					t.Fatal(err)
				}
				return s
			},
			queryRel: "Polluted",
		},
	}
}

// TestQueryLocalBudgetSweep is the lazy-grounding convergence guarantee:
// local marginals approach the full-graph marginals as the variable budget
// grows (monotone max-TV decrease across three budgets, up to Monte-Carlo
// slack), the reported truncation bound dominates the observed error at every
// budget, and the largest budget — enough to cover the whole uncertain
// component — agrees with full inference within the harness TV tolerance.
func TestQueryLocalBudgetSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	for _, w := range localWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			s := w.build(t)
			defer s.Close()
			res, err := s.Ground()
			if err != nil {
				t.Fatal(err)
			}
			scores, err := s.Infer()
			if err != nil {
				t.Fatal(err)
			}
			full := make(map[string][]float64)
			scores.Each(w.queryRel, func(key string, _ factorgraph.VarID, marginal []float64) bool {
				full[key] = marginal
				return true
			})
			// Probe genuinely uncertain atoms first: evidence-determined
			// point masses are exact at any budget and would mask the
			// convergence signal.
			var uncertain, certain []string
			for k, m := range full {
				if mode := scoreOf(m); mode > 0.99 || mode < 0.01 {
					certain = append(certain, k)
				} else {
					uncertain = append(uncertain, k)
				}
			}
			sort.Strings(uncertain)
			sort.Strings(certain)
			atoms := append(uncertain, certain...)
			if len(atoms) > 4 {
				atoms = atoms[:4]
			}

			budgets := []int{2, 8, res.Stats.Vars}
			points := make([]testutil.BudgetPoint, 0, len(budgets))
			for _, budget := range budgets {
				maxTV, maxBound := 0.0, 0.0
				for _, key := range atoms {
					lr, err := s.QueryLocal(context.Background(), key, LocalBudget{
						MaxVars:      budget,
						MinInfluence: 1e-9,
					})
					if err != nil {
						t.Fatalf("QueryLocal(%s, budget %d): %v", key, budget, err)
					}
					if lr.Vars > budget {
						t.Fatalf("budget %d exceeded: %d interior vars", budget, lr.Vars)
					}
					if tv := testutil.TV(lr.Marginal, full[key]); tv > maxTV {
						maxTV = tv
					}
					if lr.ErrorBound > maxBound {
						maxBound = lr.ErrorBound
					}
				}
				points = append(points, testutil.BudgetPoint{Budget: budget, MaxTV: maxTV, Bound: maxBound})
			}
			testutil.CheckBudgetSweep(t, points, localTol)
			if last := points[len(points)-1]; last.MaxTV > localTol {
				t.Fatalf("full-budget local inference off: max TV %.4f > %.2f", last.MaxTV, localTol)
			}
		})
	}
}

// TestQueryLocalInterior checks the neighbourhood payload: the root's own
// marginal appears in Interior under the queried key, and every interior key
// resolves back to a grounded atom.
func TestQueryLocalInterior(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 7})
	defer s.Close()
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	scores, err := s.Infer()
	if err != nil {
		t.Fatal(err)
	}
	// Pick the first uncertain atom (sorted): an evidence-pinned root yields
	// a frozen point-mass answer with an empty interior, which is not what
	// this test exercises.
	var keys []string
	scores.Each("HasEbola", func(k string, _ factorgraph.VarID, m []float64) bool {
		if p := scoreOf(m); p > 0.01 && p < 0.99 {
			keys = append(keys, k)
		}
		return true
	})
	if len(keys) == 0 {
		t.Fatal("no uncertain HasEbola atom")
	}
	sort.Strings(keys)
	key := keys[0]
	lr, err := s.QueryLocal(context.Background(), key, LocalBudget{MaxVars: 64, Epochs: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := lr.Interior[key]; !ok || testutil.TV(got, lr.Marginal) != 0 {
		t.Fatalf("Interior[%q] must echo the root marginal", key)
	}
	if lr.Vars != len(lr.Interior) {
		t.Fatalf("Vars %d != len(Interior) %d", lr.Vars, len(lr.Interior))
	}
	if lr.Score < 0 || lr.Score > 1 {
		t.Fatalf("score %.4f out of range", lr.Score)
	}
}

// TestQueryLocalErrors checks the precondition errors.
func TestQueryLocalErrors(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 7})
	defer s.Close()
	if _, err := s.QueryLocal(context.Background(), "x", LocalBudget{}); err == nil {
		t.Fatal("QueryLocal before Ground must fail")
	}
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryLocal(context.Background(), "NoSuchAtom|1", LocalBudget{}); err == nil {
		t.Fatal("unknown atom must fail")
	}
}
