package core

import (
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs/testutil"
)

// TestShardCountInvarianceOnWorkloads is the end-to-end face of the
// sharded-inference contract: the same grounded workload inferred with 1,
// 2 and 4 shards produces the same marginals within Monte-Carlo tolerance.
// The shard counts run distinct chains (per-shard seeds, halo exchange), so
// this is a statistical equivalence check against the single-process
// reference, on the gwdb and nyccas datagen workloads.
func TestShardCountInvarianceOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical sweep")
	}
	for _, w := range localWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			marg := map[int]map[string][]float64{}
			for _, shards := range []int{1, 2, 4} {
				s := w.build(t)
				s.cfg.Shards = shards
				if _, err := s.Ground(); err != nil {
					t.Fatal(err)
				}
				scores, err := s.Infer()
				if err != nil {
					s.Close()
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if shards > 1 && s.ShardGroup() == nil {
					s.Close()
					t.Fatalf("shards=%d: sharded path not taken", shards)
				}
				m := map[string][]float64{}
				scores.Each(w.queryRel, func(key string, _ factorgraph.VarID, marginal []float64) bool {
					m[key] = marginal
					return true
				})
				s.Close()
				marg[shards] = m
			}
			if len(marg[1]) == 0 {
				t.Fatal("test premise broken: no query atoms")
			}
			for _, shards := range []int{2, 4} {
				d, key, err := testutil.KeyedMaxTV(marg[shards], marg[1])
				if err != nil {
					t.Fatal(err)
				}
				if d > localTol {
					t.Errorf("shards=%d vs single-process: max TV %.4f > %.2f at %s", shards, d, localTol, key)
				}
			}
		})
	}
}

// TestShardedConfigValidation pins the wiring preconditions: sharding is a
// Sya-engine feature, and TCP addresses must match the shard count.
func TestShardedConfigValidation(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineDeepDive, Shards: 2, Seed: 7})
	defer s.Close()
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(); err == nil {
		t.Error("sharded DeepDive inference must fail")
	}

	s2 := newEbolaSystem(t, Config{Engine: EngineSya, Shards: 2, ShardAddrs: []string{"127.0.0.1:0"}, Seed: 7})
	defer s2.Close()
	if _, err := s2.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Infer(); err == nil {
		t.Error("mismatched ShardAddrs length must fail")
	}
}
