package core

// System-level tests of the fault-tolerant runtime: end-to-end accuracy of
// both engines against exact marginals (the statistical harness extended to
// EngineDeepDive, which previously was only covered at the sampler layer),
// context cancellation through the public facade, sampler lifecycle
// (Close/reuse), and checkpoint/resume driven purely by Config.

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/gibbs/testutil"
)

// engineExactTol is the end-to-end total-variation tolerance. The ebola
// graph has four variables; at these epoch counts the Monte-Carlo error is
// well inside it.
const engineExactTol = 0.04

// exactMarginals enumerates the ground graph.
func exactMarginals(t *testing.T, g *factorgraph.Graph) [][]float64 {
	t.Helper()
	want, err := testutil.Exact(g)
	if err != nil {
		t.Fatalf("exact marginals: %v", err)
	}
	return want
}

func TestEnginesMatchExactMarginalsEndToEnd(t *testing.T) {
	for _, engine := range []Engine{EngineSya, EngineDeepDive} {
		t.Run(engine.String(), func(t *testing.T) {
			s := newEbolaSystem(t, Config{Engine: engine, Seed: 5, Epochs: 20000})
			defer s.Close()
			res, err := s.Ground()
			if err != nil {
				t.Fatal(err)
			}
			scores, err := s.Infer()
			if err != nil {
				t.Fatal(err)
			}
			want := exactMarginals(t, res.Graph)
			if tv := testutil.MaxTV(scores.Marginals, want); tv > engineExactTol {
				t.Errorf("%s end-to-end max TV vs exact = %v, want <= %v", engine, tv, engineExactTol)
			}
		})
	}
}

func TestInferContextCancellation(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 5})
	defer s.Close()
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scores, st, err := s.InferContext(ctx, 5000)
	if err != nil {
		t.Fatalf("InferContext: %v", err)
	}
	if st.Reason != gibbs.ReasonCanceled || st.Epochs != 0 {
		t.Errorf("stats = %+v, want 0 epochs, ReasonCanceled", st)
	}
	if scores == nil {
		t.Fatal("cancelled inference returned no scores")
	}
	// Partial (here: zero-sample) marginals are still well-formed.
	for v, m := range scores.Marginals {
		var sum float64
		for _, p := range m {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("marginal %d not normalized: %v", v, m)
		}
	}
	// A live context finishes the job on the same (reused) sampler.
	_, st2, err := s.InferContext(context.Background(), 100)
	if err != nil || st2.Reason != gibbs.ReasonDone {
		t.Fatalf("follow-up InferContext = %+v, %v", st2, err)
	}
}

func TestSamplerReusedAcrossInferCallsAndClosed(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 5})
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.InferEpochs(50); err != nil {
		t.Fatal(err)
	}
	first := s.Sampler()
	if first == nil {
		t.Fatal("no live sampler after Infer")
	}
	if _, err := s.InferEpochs(50); err != nil {
		t.Fatal(err)
	}
	if s.Sampler() != first {
		t.Error("sampler was rebuilt between Infer calls instead of reused")
	}
	s.Close()
	if s.Sampler() != nil {
		t.Error("sampler still live after Close")
	}
	s.Close() // idempotent
	// The system stays usable: the next inference builds a fresh sampler.
	if _, err := s.InferEpochs(50); err != nil {
		t.Fatal(err)
	}
	if s.Sampler() == nil || s.Sampler() == first {
		t.Error("expected a fresh sampler after Close")
	}
	s.Close()
}

func TestConfigCheckpointResumeEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sys.ckpt")
	// BurnIn -1: with the default burn-in these short runs would count no
	// samples at all and the comparison would be vacuously uniform.
	base := Config{Engine: EngineSya, Seed: 5, Workers: 1, BurnIn: -1, CheckpointPath: path, CheckpointEvery: 25}

	// Reference: an uninterrupted run with no checkpointing.
	ref := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 5, Workers: 1, BurnIn: -1})
	defer ref.Close()
	if _, err := ref.Ground(); err != nil {
		t.Fatal(err)
	}
	wantScores, _, err := ref.InferContext(context.Background(), 200)
	if err != nil {
		t.Fatal(err)
	}

	// First system runs half the budget (the last snapshot lands exactly at
	// epoch 100 = 4×25 per instance... in sampler epochs: RunTotal splits
	// the budget across instances) and "crashes".
	s1 := newEbolaSystem(t, base)
	if _, err := s1.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.InferContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	halfEpochs := s1.Sampler().TotalEpochs()
	s1.Close()

	// Second system — fresh process in spirit — resumes from the file.
	s2 := newEbolaSystem(t, base)
	defer s2.Close()
	if _, err := s2.Ground(); err != nil {
		t.Fatal(err)
	}
	gotScores, _, err := s2.InferContext(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Sampler().TotalEpochs(); got <= halfEpochs {
		t.Fatalf("resumed sampler at %d epochs, want beyond the checkpointed %d", got, halfEpochs)
	}
	// Workers=1 spatial sampling is scheduling-deterministic, so the resumed
	// run must reproduce the uninterrupted marginals exactly.
	for v := range wantScores.Marginals {
		for x := range wantScores.Marginals[v] {
			if wantScores.Marginals[v][x] != gotScores.Marginals[v][x] {
				t.Fatalf("marginal[%d][%d]: uninterrupted %v, resumed %v",
					v, x, wantScores.Marginals[v][x], gotScores.Marginals[v][x])
			}
		}
	}
}
