package core

// System-level observability tests: a Config-supplied registry and trace
// must see the whole pipeline (grounding gauges, sampler counters,
// diagnostics, checkpoint resume counters), and the resume telemetry must
// distinguish primary resumes from .prev fallbacks.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gibbs"
	"repro/internal/obs"
)

func TestObservabilityThroughConfig(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	tr := obs.NewTrace(&buf)
	var progress []gibbs.Progress
	s := newEbolaSystem(t, Config{
		Engine: EngineSya, Seed: 5, BurnIn: -1,
		Metrics:       reg,
		Trace:         tr,
		ProgressEvery: 10,
		Progress:      func(p gibbs.Progress) { progress = append(progress, p) },
	})
	defer s.Close()
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.InferContext(context.Background(), 60); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, name := range []string{"sya_ground_vars", "sya_ground_logical_factors", "sya_epochs_total", "sya_chunks_total"} {
		if snap[name] <= 0 {
			t.Errorf("%s = %v, want > 0 (snapshot %v)", name, snap[name], snap)
		}
	}
	if len(progress) == 0 {
		t.Error("Progress callback never fired")
	}

	phases := map[string]int{}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		phase, _ := ev["phase"].(string)
		phases[phase]++
	}
	for _, phase := range []string{"grounding", "inference"} {
		if phases[phase] == 0 {
			t.Errorf("trace has no %q events (got %v)", phase, phases)
		}
	}
}

func TestResumeCountersDistinguishFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sys.ckpt")
	base := Config{Engine: EngineSya, Seed: 5, Workers: 1, BurnIn: -1,
		CheckpointPath: path, CheckpointEvery: 10}

	// Seed two checkpoint generations.
	s1 := newEbolaSystem(t, base)
	if _, err := s1.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s1.InferContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	if _, err := os.Stat(gibbs.PrevPath(path)); err != nil {
		t.Fatalf("no rotated generation after the first run: %v", err)
	}

	// A healthy resume counts as a primary resume, not a fallback.
	cfg := base
	cfg.Metrics = obs.NewRegistry()
	s2 := newEbolaSystem(t, cfg)
	if _, err := s2.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.InferContext(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	snap := cfg.Metrics.Snapshot()
	if snap["sya_checkpoint_resumes_total"] != 1 {
		t.Errorf("resumes = %v, want 1", snap["sya_checkpoint_resumes_total"])
	}
	if snap["sya_checkpoint_resume_fallbacks_total"] != 0 {
		t.Errorf("fallbacks = %v, want 0", snap["sya_checkpoint_resume_fallbacks_total"])
	}

	// Corrupt the primary: the resume falls back to .prev and says so.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.Metrics = obs.NewRegistry()
	s3 := newEbolaSystem(t, cfg)
	defer s3.Close()
	if _, err := s3.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s3.InferContext(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	snap = cfg.Metrics.Snapshot()
	if snap["sya_checkpoint_resumes_total"] != 1 || snap["sya_checkpoint_resume_fallbacks_total"] != 1 {
		t.Errorf("fallback resume counters = (%v, %v), want (1, 1)",
			snap["sya_checkpoint_resumes_total"], snap["sya_checkpoint_resume_fallbacks_total"])
	}
}
