package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/grounding"
	"repro/internal/obs"
)

// This file is the system face of query-driven lazy grounding (ROADMAP item
// 1): QueryLocal answers a point query by extracting a bounded subgraph
// around the queried atom (grounding.ExtractLocal), compiling sampling
// kernels for just that slab, and running a private sampler over it — so
// per-query work scales with the local neighbourhood, not the KB.

// LocalBudget bounds one lazy query.
type LocalBudget struct {
	// MaxVars caps the sampled (interior) variables. ≤ 0 → 256.
	MaxVars int
	// MaxFactors caps kept factors (logical + spatial). 0 = unlimited.
	MaxFactors int
	// MinInfluence prunes frontier candidates below this root influence
	// (decay product along the strongest path). ≤ 0 → 1e-4.
	MinInfluence float64
	// Epochs is the sampling budget on the subgraph. ≤ 0 → Config.Epochs.
	Epochs int
}

// LocalResult is one lazy query answer.
type LocalResult struct {
	// Key is the queried atom.
	Key string
	// Marginal is the root atom's estimated marginal distribution.
	Marginal []float64
	// Score is the factual score: P(true) for binary atoms, the modal
	// probability for categorical ones.
	Score float64
	// Vars counts sampled (interior) variables; BoundaryVars the frozen
	// shell around them.
	Vars, BoundaryVars int
	// Factors and SpatialPairs count the subgraph's kept structure.
	Factors, SpatialPairs int
	// ErrorBound bounds the marginal distortion introduced by freezing
	// uncertain boundary atoms (0 = exact up to sampling noise); Truncated
	// reports whether any uncertain tissue was cut at all.
	ErrorBound float64
	Truncated  bool
	// GroundTime covers frontier expansion + subgraph build; SampleTime
	// covers kernel compilation + sampling.
	GroundTime, SampleTime time.Duration
	// Interior holds the marginals of every sampled atom, keyed by atom
	// key — the local counterpart of Scores for callers that want the
	// whole neighbourhood.
	Interior map[string][]float64
}

// localState is per-grounding lazily built lookup state shared by every
// QueryLocal call: the VarID → atom-key reverse index.
type localState struct {
	keys []string
}

// localLookup returns (building once per grounding) the reverse key index.
// Safe under concurrent readers: the first writer wins and concurrent
// builds produce identical state.
func (s *System) localLookup() *localState {
	if st := s.local.Load(); st != nil {
		return st
	}
	keys := make([]string, s.ground.Graph.NumVars())
	for k, v := range s.ground.VarID {
		keys[v] = k
	}
	st := &localState{keys: keys}
	s.local.CompareAndSwap(nil, st)
	return s.local.Load()
}

// QueryLocal answers a point query over the queried atom's bounded local
// neighbourhood instead of the full ground graph. Grounding must have run;
// inference need not have. The call is read-only on the System (safe under
// concurrent QueryLocal calls and concurrent readers), builds a private
// sampler + worker pool sized to the subgraph, and releases them before
// returning.
//
// Boundary atoms freeze at their evidence value, their upsert-pinned state
// (evidence-grade, from the live sampler), or — uncertain atoms — the
// deterministic initial chain state, with the distortion that last class
// can introduce reported in ErrorBound.
func (s *System) QueryLocal(ctx context.Context, key string, budget LocalBudget) (*LocalResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.ground == nil {
		return nil, fmt.Errorf("core: Ground must run before QueryLocal")
	}
	vid, ok := s.ground.VarID[key]
	if !ok {
		return nil, fmt.Errorf("core: unknown atom %q", key)
	}
	st := s.localLookup()

	// Boundary freezing policy. The live spatial sampler (when inference has
	// run) informs the frozen state: upsert pins are evidence-grade (their
	// point-mass marginal recovers the pinned value), and any other sampled
	// variable freezes at its current modal state as a warm guess — still
	// counted toward the truncation bound, but far closer to the posterior
	// than the cold initial chain state.
	sp, _ := s.sampler.(*gibbs.Spatial)
	argmaxOf := func(m []float64) int32 {
		arg, best := int32(0), -1.0
		for i, p := range m {
			if p > best {
				arg, best = int32(i), p
			}
		}
		return arg
	}
	freeze := func(v factorgraph.VarID) (int32, bool) {
		if sp == nil {
			return 0, false // cold: deterministic initial chain state
		}
		return argmaxOf(sp.MarginalVar(v)), s.pinned[v]
	}

	groundSpan := obs.SpanFromContext(ctx).Child("local_ground")
	groundStart := time.Now()
	lg, err := grounding.ExtractLocal(s.ground, vid, grounding.LocalOptions{
		MaxVars:      budget.MaxVars,
		MaxFactors:   budget.MaxFactors,
		MinInfluence: budget.MinInfluence,
		Freeze:       freeze,
	})
	groundDur := time.Since(groundStart)
	if err != nil {
		groundSpan.End()
		return nil, err
	}
	groundSpan.Notef("vars=%d boundary=%d factors=%d", len(lg.Interior), lg.BoundaryVars, lg.Graph.NumFactors())
	groundSpan.End()

	res := &LocalResult{
		Key:          key,
		Vars:         len(lg.Interior),
		BoundaryVars: lg.BoundaryVars,
		Factors:      lg.Graph.NumFactors(),
		SpatialPairs: lg.Graph.NumSpatialFactors(),
		ErrorBound:   lg.ErrorBound,
		Truncated:    lg.Truncated,
		GroundTime:   groundDur,
	}
	epochs := budget.Epochs
	if epochs <= 0 {
		epochs = s.cfg.Epochs
	}

	sampleSpan := obs.SpanFromContext(ctx).Child("local_sample")
	defer sampleSpan.End()
	sampleStart := time.Now()
	// A private hogwild sampler over the slab: kernels compile lazily for
	// just this subgraph inside the sampler's scorer, and the pool is
	// subgraph-sized (never the System's shared full-graph pool — the
	// shapes don't match).
	var opts []gibbs.SamplerOption
	if s.cfg.NoKernels {
		opts = append(opts, gibbs.NoKernels())
	}
	smp := gibbs.NewHogwild(lg.Graph, s.cfg.Seed, s.cfg.Workers, opts...)
	defer smp.Close()
	smp.SetBurnIn(epochs / 10)
	if _, err := smp.Run(ctx, epochs); err != nil {
		return nil, err
	}
	marg := smp.Marginals()
	res.SampleTime = time.Since(sampleStart)
	sampleSpan.Notef("epochs=%d", epochs)

	res.Marginal = marg[lg.Root]
	res.Score = scoreOf(res.Marginal)
	res.Interior = make(map[string][]float64, len(lg.Interior))
	for i, fullID := range lg.Interior {
		// Interior ids precede boundary ids in the subgraph, in order.
		res.Interior[st.keys[fullID]] = marg[i]
	}
	return res, nil
}

// scoreOf reduces a marginal to the factual score: P(true) for binary
// domains, the modal probability otherwise.
func scoreOf(m []float64) float64 {
	if len(m) == 2 {
		return m[1]
	}
	best := 0.0
	for _, p := range m {
		if p > best {
			best = p
		}
	}
	return best
}
