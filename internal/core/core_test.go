package core

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/datagen"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/stats"
	"repro/internal/storage"
)

// newEbolaSystem builds a system for the Fig. 1 scenario.
func newEbolaSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.Metric == geom.Euclidean {
		cfg.Metric = geom.HaversineMiles
	}
	if cfg.Bandwidth == 0 {
		cfg.Bandwidth = 60
	}
	if cfg.PyramidLevels == 0 {
		cfg.PyramidLevels = 4
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 6000
	}
	s := NewSystem(cfg)
	if err := s.LoadProgram(datagen.EbolaProgram); err != nil {
		t.Fatal(err)
	}
	county, evidence := datagen.EbolaRows(datagen.EbolaCounties())
	if err := s.LoadRows("County", county); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRows("CountyEvidence", evidence); err != nil {
		t.Fatal(err)
	}
	return s
}

func countyVals(c datagen.County) []storage.Value {
	return []storage.Value{storage.Int(c.ID), storage.Geom(c.Loc)}
}

func TestSystemEndToEndSya(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 7})
	res, err := s.Ground()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Vars != 4 || res.Stats.SpatialPairs == 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	scores, err := s.Infer()
	if err != nil {
		t.Fatal(err)
	}
	counties := datagen.EbolaCounties()
	var got []float64
	for _, c := range counties[1:] {
		p, ok := scores.TrueProb("HasEbola", countyVals(c))
		if !ok {
			t.Fatalf("no score for %s", c.Name)
		}
		got = append(got, p)
	}
	// Paper Fig. 1 ordering: Margibi > Bong > Gbarpolu.
	if !(got[0] > got[1] && got[1] > got[2]) {
		t.Errorf("ordering violated: %v", got)
	}
	if s.GroundingTime() <= 0 || s.InferenceTime() <= 0 {
		t.Error("times not recorded")
	}
}

func TestSystemEndToEndDeepDive(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineDeepDive, Seed: 7})
	res, err := s.Ground()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpatialPairs != 0 {
		t.Fatalf("baseline has spatial pairs: %d", res.Stats.SpatialPairs)
	}
	scores, err := s.Infer()
	if err != nil {
		t.Fatal(err)
	}
	counties := datagen.EbolaCounties()
	// Boolean predicate: Margibi and Bong get similar scores (both within
	// 150 mi) while Gbarpolu's only support is the generic prior — the
	// DeepDive deficiency of Fig. 1.
	margibi, _ := scores.TrueProb("HasEbola", countyVals(counties[1]))
	bong, _ := scores.TrueProb("HasEbola", countyVals(counties[2]))
	gbarpolu, _ := scores.TrueProb("HasEbola", countyVals(counties[3]))
	if !(margibi > gbarpolu && bong > gbarpolu) {
		t.Errorf("scores: margibi=%v bong=%v gbarpolu=%v", margibi, bong, gbarpolu)
	}
}

func TestSyaBeatsDeepDiveOnEbolaF1(t *testing.T) {
	evaluate := func(engine Engine) float64 {
		s := newEbolaSystem(t, Config{Engine: engine, Seed: 11})
		if _, err := s.Ground(); err != nil {
			t.Fatal(err)
		}
		scores, err := s.Infer()
		if err != nil {
			t.Fatal(err)
		}
		var exs []stats.Example
		for _, c := range datagen.EbolaCounties()[1:] {
			p, ok := scores.TrueProb("HasEbola", countyVals(c))
			if !ok {
				t.Fatal("missing score")
			}
			exs = append(exs, stats.Example{Score: p, Truth: c.Truth, HasTruth: true})
		}
		return stats.Evaluate(exs, stats.DefaultOptions()).F1
	}
	sya := evaluate(EngineSya)
	dd := evaluate(EngineDeepDive)
	if sya < dd {
		t.Errorf("Sya F1 %v < DeepDive F1 %v", sya, dd)
	}
	if sya < 0.6 {
		t.Errorf("Sya F1 %v unexpectedly low", sya)
	}
}

func TestInferBeforeGroundFails(t *testing.T) {
	s := NewSystem(Config{})
	if _, err := s.Infer(); err == nil {
		t.Error("Infer before Ground should fail")
	}
	if _, err := s.Ground(); err == nil {
		t.Error("Ground before LoadProgram should fail")
	}
}

func TestIncrementalInferenceAPI(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 3, Epochs: 2000})
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(); err != nil {
		t.Fatal(err)
	}
	counties := datagen.EbolaCounties()
	// Declare Bong infected and resample incrementally.
	if err := s.UpdateEvidence("HasEbola", countyVals(counties[2]), 1); err != nil {
		t.Fatal(err)
	}
	scores, err := s.InferIncremental(2000)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := scores.TrueProb("HasEbola", countyVals(counties[2])); p != 1 {
		t.Errorf("pinned Bong = %v", p)
	}
	// Unknown atom errors.
	if err := s.UpdateEvidence("HasEbola", []storage.Value{storage.Int(99), storage.Geom(geom.Pt(0, 0))}, 1); err == nil {
		t.Error("unknown atom should fail")
	}
}

func TestIncrementalNeedsSyaEngine(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineDeepDive, Seed: 3, Epochs: 100})
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(); err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateEvidence("HasEbola", countyVals(datagen.EbolaCounties()[2]), 1); err == nil {
		t.Error("baseline incremental update should fail")
	}
	if _, err := s.InferIncremental(10); err == nil {
		t.Error("baseline incremental inference should fail")
	}
}

func TestStepRuleExpansionThroughSystem(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineDeepDive, Seed: 5, Epochs: 500})
	if err := s.ExpandStepRules("R1", 4, 150, 0.8); err != nil {
		t.Fatal(err)
	}
	// R0 (prior) + 4 bands replacing R1.
	if got := len(s.Program().Rules); got != 5 {
		t.Fatalf("rules after expansion = %d", got)
	}
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(); err != nil {
		t.Fatal(err)
	}
	// Expansion before a program is loaded fails.
	s2 := NewSystem(Config{})
	if err := s2.ExpandStepRules("R1", 4, 150, 0.8); err == nil {
		t.Error("expansion without program should fail")
	}
}

func TestScoresEachAndMarginal(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 13, Epochs: 500})
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	scores, err := s.Infer()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	scores.Each("HasEbola", func(key string, _ int32, m []float64) bool {
		if len(m) != 2 {
			t.Errorf("marginal width = %d", len(m))
		}
		n++
		return true
	})
	if n != 4 {
		t.Errorf("Each visited %d atoms", n)
	}
	if _, ok := scores.Marginal("HasEbola", countyVals(datagen.EbolaCounties()[0])); !ok {
		t.Error("Marginal lookup failed")
	}
	if _, ok := scores.Marginal("HasEbola", []storage.Value{storage.Int(42)}); ok {
		t.Error("bogus Marginal lookup succeeded")
	}
}

func TestGWDBSmallEndToEnd(t *testing.T) {
	// A small GWDB build through the full 11-rule program in both engines.
	data := datagen.Wells(datagen.WellsConfig{N: 150, Seed: 21, Extent: 300})
	build := func(engine Engine) (*System, *Scores) {
		s := NewSystem(Config{
			Engine: engine, Seed: 9, Epochs: 600, Bandwidth: 30,
			SupportRadius: 60, PyramidLevels: 5,
		})
		if err := s.LoadProgram(datagen.GWDBProgram); err != nil {
			t.Fatal(err)
		}
		wells, evidence := data.Rows()
		if err := s.LoadRows("Well", wells); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadRows("WellEvidence", evidence); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ground(); err != nil {
			t.Fatal(err)
		}
		scores, err := s.Infer()
		if err != nil {
			t.Fatal(err)
		}
		return s, scores
	}
	evalF1 := func(scores *Scores) float64 {
		var exs []stats.Example
		for _, w := range data.Wells {
			if w.IsEvidence {
				continue
			}
			p, ok := scores.TrueProb("IsSafe", []storage.Value{storage.Int(w.ID), storage.Geom(w.Loc)})
			if !ok {
				t.Fatal("missing well score")
			}
			exs = append(exs, stats.Example{Score: p, Truth: stats.Point(w.TruthProb), HasTruth: true})
		}
		return stats.Evaluate(exs, stats.Options{Tolerance: 0.25, DecisionMargin: 0}).F1
	}
	_, syaScores := build(EngineSya)
	_, ddScores := build(EngineDeepDive)
	syaF1, ddF1 := evalF1(syaScores), evalF1(ddScores)
	t.Logf("GWDB small: Sya F1=%.3f DeepDive F1=%.3f", syaF1, ddF1)
	if syaF1 < ddF1-0.05 {
		t.Errorf("Sya F1 %v clearly below DeepDive %v", syaF1, ddF1)
	}
}

func TestLearnWeightsThroughSystem(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 3, Epochs: 1500})
	if _, err := s.LearnWeights(learn.Options{Iterations: 20}); err == nil {
		t.Error("LearnWeights before Ground should fail")
	}
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	weights, err := s.LearnWeights(learn.Options{Iterations: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) != 2 { // R0 prior + R1 imply
		t.Fatalf("weights = %v", weights)
	}
	if _, ok := weights["R1"]; !ok {
		t.Errorf("missing R1: %v", weights)
	}
	// Inference still runs under the learned weights.
	if _, err := s.Infer(); err != nil {
		t.Fatal(err)
	}
}

func TestMAPThroughSystem(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 3, Epochs: 500})
	if _, err := s.MAP(gibbs.MAPOptions{}); err == nil {
		t.Error("MAP before Ground should fail")
	}
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	w, err := s.MAP(gibbs.MAPOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	counties := datagen.EbolaCounties()
	// Evidence county stays infected in the MAP world.
	v, ok := w.Value("HasEbola", countyVals(counties[0]))
	if !ok || v != 1 {
		t.Errorf("MAP evidence = %d %v", v, ok)
	}
	if _, ok := w.Value("HasEbola", []storage.Value{storage.Int(99)}); ok {
		t.Error("unknown atom lookup should fail")
	}
	// Far Gbarpolu is healthy in the most probable world. (Margibi's
	// marginal is above 0.5, but the joint mode at these weights is the
	// all-healthy world apart from the evidence — the usual MAP-vs-marginal
	// distinction.)
	gbarpolu, _ := w.Value("HasEbola", countyVals(counties[3]))
	if gbarpolu != 0 {
		t.Errorf("MAP world: gbarpolu=%d", gbarpolu)
	}
	if w.Energy == 0 {
		t.Error("energy not reported")
	}
}

func TestAutoLearnOnLearnedWeightRules(t *testing.T) {
	// A program with @weight(?) rules learns automatically at Infer time.
	src := `
Site (id bigint, location point, risky bool).
SiteEvidence (id bigint, location point, infected bool).
Infected? (id bigint, location point).
D1: Infected(S, L) = NULL :- Site(S, L, _).
D2: Infected(S, L) = I :- SiteEvidence(S, L, I).
R1: @weight(?) Infected(S, L) :- Site(S, L, R) [R = true].
`
	s := NewSystem(Config{Epochs: 400, Seed: 2})
	if err := s.LoadProgram(src); err != nil {
		t.Fatal(err)
	}
	var sites, ev []storage.Row
	for i := int64(1); i <= 60; i++ {
		risky := i%2 == 0
		sites = append(sites, storage.Row{storage.Int(i), storage.Geom(geom.Pt(float64(i), 0)), storage.Bool(risky)})
		if i%3 != 0 {
			ev = append(ev, storage.Row{storage.Int(i), storage.Geom(geom.Pt(float64(i), 0)), storage.Bool(risky)})
		}
	}
	if err := s.LoadRows("Site", sites); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRows("SiteEvidence", ev); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	scores, err := s.Infer() // triggers auto-learning
	if err != nil {
		t.Fatal(err)
	}
	// Learned R1 weight should make risky unlabelled sites lean infected.
	p6, _ := scores.TrueProb("Infected", []storage.Value{storage.Int(6), storage.Geom(geom.Pt(6, 0))})
	p9, _ := scores.TrueProb("Infected", []storage.Value{storage.Int(9), storage.Geom(geom.Pt(9, 0))})
	if !(p6 > p9) {
		t.Errorf("risky site %v should exceed non-risky %v after auto-learning", p6, p9)
	}
}

func TestConfigAccessorsAndEngineString(t *testing.T) {
	if EngineSya.String() != "sya" || EngineDeepDive.String() != "deepdive" {
		t.Error("engine names")
	}
	s := NewSystem(Config{Epochs: 123, BurnIn: -1})
	cfg := s.Config()
	if cfg.Epochs != 123 || cfg.PyramidLevels != 8 || cfg.Instances != 2 {
		t.Errorf("defaults: %+v", cfg)
	}
	if s.burnIn(2) != 0 {
		t.Error("negative BurnIn should disable burn-in")
	}
	s2 := NewSystem(Config{Epochs: 1000, BurnIn: 77})
	if s2.burnIn(4) != 77 {
		t.Error("explicit BurnIn should pass through")
	}
	s3 := NewSystem(Config{Epochs: 1000})
	if s3.burnIn(2) != 50 {
		t.Errorf("default BurnIn = %d, want Epochs/(10*chains)", s3.burnIn(2))
	}
}

func TestSaveGraphAndSamplerAccessors(t *testing.T) {
	s := newEbolaSystem(t, Config{Engine: EngineSya, Seed: 1, Epochs: 100})
	if err := s.SaveGraph(io.Discard); err == nil {
		t.Error("SaveGraph before Ground should fail")
	}
	if s.Sampler() != nil {
		t.Error("sampler should be nil before Infer")
	}
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveGraph(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty snapshot")
	}
	g, err := factorgraph.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars() != s.Grounding().Graph.NumVars() {
		t.Error("snapshot round-trip lost variables")
	}
	if _, err := s.Infer(); err != nil {
		t.Fatal(err)
	}
	if s.Sampler() == nil || s.Sampler().Name() != "spatial" {
		t.Error("sampler accessor wrong")
	}
}

func TestLoadProgramInvalid(t *testing.T) {
	s := NewSystem(Config{})
	if err := s.LoadProgram("not a program ("); err == nil {
		t.Error("invalid program should fail")
	}
	if err := s.LoadRows("Nope", nil); err == nil {
		t.Error("rows into unknown relation should fail")
	}
}
