package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/factorgraph"
	"repro/internal/gibbs"
	"repro/internal/grounding"
	"repro/internal/obs"
	"repro/internal/storage"
)

// DeltaStats reports what an UpsertEvidence call did: how many rows were
// appended, whether the change was absorbed as a sparse evidence patch or
// forced a structural re-ground, and how the patch decomposed into applied
// vs. skipped pins.
type DeltaStats struct {
	// Rows appended to the relation.
	Rows int
	// Pins applied to the live sampler (non-structural path only).
	Pins int
	// SkippedPins counts patch pins dropped because an earlier upsert
	// already pinned the same atom — the first pin wins, mirroring the
	// batch grounder's evidence dedup.
	SkippedPins int
	// Derivations re-evaluated by the delta grounder.
	Derivations int
	// Structural reports that the change could not be expressed as a patch
	// and the system fell back to a full re-ground (Reason says why).
	Structural bool
	Reason     string
	// GroundTime is the wall time of the delta evaluation, or of the full
	// re-ground on the structural path.
	GroundTime time.Duration
}

// UpsertEvidence appends rows to a relation and folds the change into the
// live system without a full rebuild when possible. On the fast path the
// delta grounder re-evaluates only the derivations reading the relation,
// producing a sparse patch of evidence pins that is applied to the running
// sampler (first pin per atom wins; conflicting upserts are dropped, exactly
// as the batch grounder's dedup would drop them). The caller then resamples
// with InferIncrementalContext to propagate the new evidence.
//
// The structural fallback — a change the patch language cannot express (new
// ground atoms, variable-relation or rule-body reach) or the DeepDive engine,
// which has no incremental sampler — re-grounds from scratch; the next Infer
// call rebuilds the sampler over the fresh graph.
func (s *System) UpsertEvidence(ctx context.Context, relation string, rows []storage.Row) (DeltaStats, error) {
	var stats DeltaStats
	if s.ground == nil {
		return stats, fmt.Errorf("core: Ground must run before UpsertEvidence")
	}
	tbl, err := s.db.Table(relation)
	if err != nil {
		return stats, err
	}
	if err := tbl.AppendAll(rows); err != nil {
		return stats, err
	}
	stats.Rows = len(rows)

	if s.cfg.Engine == EngineDeepDive {
		return s.upsertStructural(ctx, stats, "deepdive engine has no delta path")
	}

	gr := grounding.New(s.prog, s.db, s.groundingOptions())
	patch, err := gr.DeltaContext(ctx, s.ground, []string{relation})
	if err != nil {
		return stats, err
	}
	stats.Derivations = patch.Derivations
	stats.GroundTime = patch.Elapsed
	if patch.Structural {
		return s.upsertStructural(ctx, stats, patch.Reason)
	}
	if len(patch.Pins) == 0 {
		s.observeDelta(stats)
		return stats, nil
	}
	// Apply the patch to the live sampler (building one if inference has
	// not started yet — pins must land somewhere stateful).
	pinSpan := obs.SpanFromContext(ctx).Child("pin_apply")
	if err := s.ensureSampler(); err != nil {
		return stats, err
	}
	sp, ok := s.sampler.(*gibbs.Spatial)
	if !ok {
		return s.upsertStructural(ctx, stats, "sampler is not incremental")
	}
	if s.pinned == nil {
		s.pinned = map[factorgraph.VarID]bool{}
	}
	for _, pin := range patch.Pins {
		if s.pinned[pin.Var] {
			stats.SkippedPins++
			continue
		}
		if err := sp.UpdateEvidence(pin.Var, pin.Value); err != nil {
			return stats, err
		}
		s.pinned[pin.Var] = true
		stats.Pins++
	}
	pinSpan.Notef("pins=%d skipped=%d", stats.Pins, stats.SkippedPins)
	pinSpan.End()
	s.observeDelta(stats)
	return stats, nil
}

// Pinned reports whether v has been pinned by an evidence upsert since the
// last full ground (pins baked into the graph at grounding time show as
// Variable.Evidence instead).
func (s *System) Pinned(v factorgraph.VarID) bool { return s.pinned[v] }

// upsertStructural is the fallback: re-ground the whole program. The sampler
// and pin set are reset by GroundContext; inference restarts fresh.
func (s *System) upsertStructural(ctx context.Context, stats DeltaStats, reason string) (DeltaStats, error) {
	stats.Structural = true
	stats.Reason = reason
	span := obs.SpanFromContext(ctx).Child("reground")
	span.Note(reason)
	start := time.Now()
	if _, err := s.GroundContext(ctx); err != nil {
		return stats, err
	}
	stats.GroundTime = time.Since(start)
	span.End()
	s.observeDelta(stats)
	return stats, nil
}

// observeDelta publishes upsert outcomes to the metrics plane.
func (s *System) observeDelta(stats DeltaStats) {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter("sya_delta_upserts_total").Inc()
	m.Counter("sya_delta_rows_total").Add(uint64(stats.Rows))
	m.Counter("sya_delta_pins_total").Add(uint64(stats.Pins))
	m.Counter("sya_delta_skipped_pins_total").Add(uint64(stats.SkippedPins))
	if stats.Structural {
		m.Counter("sya_delta_structural_total").Inc()
	}
	m.Histogram("sya_delta_ground_seconds", obsDeltaBuckets).Observe(stats.GroundTime.Seconds())
}

// obsDeltaBuckets spans sub-millisecond patches to multi-second re-grounds.
var obsDeltaBuckets = []float64{.0005, .001, .005, .01, .05, .1, .5, 1, 5, 10}
