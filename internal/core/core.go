// Package core wires the paper's modules into the end-to-end Sya system of
// Fig. 2: the language module (internal/ddlog) compiles a program, the
// grounding module (internal/translate + internal/sqlx + internal/grounding)
// evaluates it against the storage database into a spatial factor graph,
// and the inference module (internal/gibbs) estimates the factual scores.
//
// The same pipeline runs in two engine modes, mirroring the paper's
// evaluation: EngineSya (spatial factors + Spatial Gibbs Sampling) and
// EngineDeepDive (the baseline: @spatial stripped, boolean spatial
// predicates only, hogwild parallel Gibbs).
package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/ddlog"
	"repro/internal/deepdive"
	"repro/internal/factorgraph"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/grounding"
	"repro/internal/learn"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/weighting"
)

// Engine selects the pipeline mode.
type Engine int

// Engine modes.
const (
	// EngineSya is the paper's system: spatial factor graph + Spatial
	// Gibbs Sampling.
	EngineSya Engine = iota
	// EngineDeepDive is the baseline: plain factor graph + hogwild Gibbs.
	EngineDeepDive
)

// String names the engine.
func (e Engine) String() string {
	if e == EngineDeepDive {
		return "deepdive"
	}
	return "sya"
}

// Config parameterizes a System. Zero values select the paper's defaults.
type Config struct {
	Engine Engine
	// Metric for distance predicates and spatial weights.
	Metric geom.Metric
	// Weighting registry for @spatial(w); nil selects exp/gauss/idw with
	// the given Bandwidth.
	Weighting *weighting.Registry
	// Bandwidth of the default weighting registry (0 → 50).
	Bandwidth float64
	// SpatialScale is the zero-distance spatial factor weight (0 → 1).
	// Values well below 1 make spatial factors pool neighbouring evidence
	// (calibrated scores); values near 1 enforce hard agreement.
	SpatialScale float64
	// PruneThreshold is the Section IV-C T (0 → 0.5).
	PruneThreshold float64
	// SupportRadius caps spatial-factor generation distance (0 → the
	// weighing function's support).
	SupportRadius float64
	// MaxNeighbors caps spatial factors per atom (0 → unlimited).
	MaxNeighbors int
	// UDFs for function implementations.
	UDFs map[string]grounding.UDF
	// SkipFactorTables disables materializing per-rule factor relations.
	SkipFactorTables bool
	// GroundWorkers is the grounding worker-pool width: concurrent rule and
	// derivation evaluation, batched join probes, and sharded spatial
	// sweeps (0 → GOMAXPROCS, 1 → sequential). The grounded factor graph is
	// identical for any setting.
	GroundWorkers int

	// Epochs is the total inference epochs E (0 → 1000, the paper's
	// default).
	Epochs int
	// Instances is K for the spatial sampler (0 → 2).
	Instances int
	// Workers is the sampler worker-pool width: per-instance parallel
	// workers for the spatial sampler and total workers for the hogwild
	// baseline (0 → GOMAXPROCS).
	Workers int
	// Seed drives all sampling randomness.
	Seed int64
	// PyramidLevels is L (0 → 8, the paper's setting).
	PyramidLevels int
	// LocalityLevel is the deepest swept pyramid level (0 → L−1).
	LocalityLevel int
	// BurnIn discards this many initial epochs per sampler chain from the
	// marginal counters (0 → one tenth of the per-chain epoch budget;
	// negative → no burn-in).
	BurnIn int
	// NoKernels makes inference and learning score variables with the
	// interpreted per-factor walk instead of the compiled per-variable
	// sampling kernels. The zero value — kernels on — is the fast path; the
	// two produce bit-identical chains, so this is purely an escape hatch
	// (surfaced as -no-kernels on the CLIs).
	NoKernels bool
	// ChunkGrain caps the work-chunk size of the samplers: cells per
	// dispatched chunk for the spatial sampler, variables per hogwild
	// bucket for the baseline. 0 keeps the engine defaults (one chunk per
	// worker per conclique group; 64-variable buckets). The chains are
	// unchanged for any setting — grain only shifts the dispatch/parallelism
	// trade-off (surfaced as -chunk-grain on the CLIs).
	ChunkGrain int

	// Shards enables sharded share-nothing inference (Sya engine, batch
	// inference only): the ground graph is partitioned by pyramid subtree
	// into this many shards, each with its own subgraph, compiled-kernel
	// slab and sampler, synchronized by a halo exchange at every epoch
	// barrier (see internal/shard). 0 or 1 keeps the single-process sampler.
	// The incremental and QueryLocal paths stay single-process.
	Shards int
	// ShardAddrs are per-shard TCP listen addresses (len must equal
	// Shards): the shards then exchange halos over the length-prefixed
	// CRC-framed TCP transport instead of in-process channels. Empty uses
	// in-process transports.
	ShardAddrs []string

	// CheckpointPath enables fault-tolerant inference: the sampler snapshots
	// its chain state to this file every CheckpointEvery epochs (atomic
	// temp-file+rename writes, keeping the previous generation at
	// CheckpointPath+".prev"), and a System whose sampler is freshly built
	// resumes from the file automatically when it exists — falling back to
	// the previous generation when the primary is torn or corrupted. Empty
	// disables.
	CheckpointPath string
	// CheckpointEvery is the snapshot interval in epochs (0 → 100).
	CheckpointEvery int

	// Metrics, when non-nil, receives pipeline metrics: sampler epoch/chunk
	// counters and timing histograms, checkpoint save/resume counters, and
	// grounding size gauges. nil disables (the samplers then skip
	// instrumentation entirely).
	Metrics *obs.Registry
	// MetricLabel, when non-empty, scopes this System's metrics to a
	// labeled view of the registry (series rendered with {system="..."}),
	// so several live Systems — e.g. multiple KBs behind one syad — can
	// share an exposition endpoint without clobbering each other's series.
	MetricLabel string
	// Trace, when non-nil, receives structured JSONL phase events covering
	// grounding (per rule), learning (per iteration) and inference (per
	// epoch, checkpoint, diagnostic). nil disables.
	Trace *obs.Trace
	// ProgressEvery enables sampler convergence diagnostics every that many
	// epochs (0 disables): running marginal max-delta and cross-instance
	// spread, surfaced through RunStats, the diag gauges, the trace, and —
	// when non-nil — the Progress callback.
	ProgressEvery int
	Progress      func(gibbs.Progress)
}

func (c Config) withDefaults() Config {
	if c.Bandwidth == 0 {
		c.Bandwidth = 50
	}
	if c.SpatialScale == 0 {
		c.SpatialScale = 1
	}
	if c.Weighting == nil {
		c.Weighting = weighting.NewRegistry(c.Bandwidth, c.SpatialScale)
	}
	if c.PruneThreshold == 0 {
		c.PruneThreshold = 0.5
	}
	if c.Epochs == 0 {
		c.Epochs = 1000
	}
	if c.Instances == 0 {
		c.Instances = 2
	}
	if c.PyramidLevels == 0 {
		c.PyramidLevels = 8
	}
	return c
}

// System is one knowledge-base construction pipeline instance.
type System struct {
	cfg  Config
	db   *storage.DB
	prog *ddlog.Program

	ground  *grounding.Result
	sampler gibbs.Sampler
	// shardGroup is the sharded-inference engine when cfg.Shards > 1 (built
	// lazily by the first InferContext, like the sampler).
	shardGroup *shard.Group
	// pool caches the sampler worker pool across sampler lifetimes, so the
	// learn→infer and re-infer paths reuse worker goroutines instead of
	// rebuilding them per run (see gibbs.SharedPool).
	pool    *gibbs.SharedPool
	learned bool

	// local is the lazily built per-grounding state of the QueryLocal path:
	// the VarID→atom-key reverse index and the deterministic freeze
	// assignment for uncertain boundary atoms. Rebuilt by the first
	// QueryLocal after each grounding; safe under concurrent readers.
	local atomic.Pointer[localState]
	// pinned tracks the evidence pins applied to the live sampler since
	// the last full grounding (UpdateEvidence and UpsertEvidence patches).
	// The first pin per atom wins — matching the batch dedup rule — and
	// the set resets when a re-ground bakes the evidence into the graph.
	pinned map[factorgraph.VarID]bool

	groundDur time.Duration
	inferDur  time.Duration
}

// NewSystem creates a system with an empty database.
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	if cfg.MetricLabel != "" {
		cfg.Metrics = cfg.Metrics.With("system", cfg.MetricLabel)
	}
	return &System{cfg: cfg, db: storage.NewDB(), pool: gibbs.NewSharedPool()}
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// DB exposes the underlying database for direct loading.
func (s *System) DB() *storage.DB { return s.db }

// LoadProgram compiles and validates a DDlog program; in DeepDive mode the
// @spatial annotations are stripped (the baseline has no spatial factors).
// Input relation tables are created from the program schemas if missing.
func (s *System) LoadProgram(src string) error {
	prog, err := ddlog.ParseAndValidate(src)
	if err != nil {
		return err
	}
	if s.cfg.Engine == EngineDeepDive {
		prog, err = deepdive.StripSpatial(prog)
		if err != nil {
			return err
		}
	}
	s.prog = prog
	for _, rel := range prog.Relations {
		if rel.IsVariable {
			continue // materialized during grounding
		}
		if _, err := s.db.Table(rel.Name); err == nil {
			continue
		}
		if _, err := s.db.Create(translate.SchemaFor(rel)); err != nil {
			return err
		}
	}
	return nil
}

// Program returns the compiled (possibly engine-transformed) program.
func (s *System) Program() *ddlog.Program { return s.prog }

// ExpandStepRules replaces the labelled rule with n step-function band
// rules (the Fig. 10 DeepDive workaround). Must be called after LoadProgram
// and before Ground.
func (s *System) ExpandStepRules(label string, n int, maxDist, maxWeight float64) error {
	if s.prog == nil {
		return fmt.Errorf("core: no program loaded")
	}
	prog, err := deepdive.ExpandStepRules(s.prog, label, n, maxDist, maxWeight)
	if err != nil {
		return err
	}
	s.prog = prog
	return nil
}

// ExpandStepRulesWeighted replaces the labelled rule with n band rules
// whose weights follow a weighing function — the banded approximation of
// Sya's continuous spatial decay that Fig. 10 sweeps.
func (s *System) ExpandStepRulesWeighted(label string, n int, maxDist float64, fn weighting.Func) error {
	if s.prog == nil {
		return fmt.Errorf("core: no program loaded")
	}
	prog, err := deepdive.ExpandStepRulesWeighted(s.prog, label, n, maxDist, fn)
	if err != nil {
		return err
	}
	s.prog = prog
	return nil
}

// LoadRows appends rows to a relation table.
func (s *System) LoadRows(relation string, rows []storage.Row) error {
	tbl, err := s.db.Table(relation)
	if err != nil {
		return err
	}
	return tbl.AppendAll(rows)
}

// ParseRows converts textual rows (CSV fields, JSON strings) into typed
// storage rows against the relation's schema, with the same per-cell rules
// as the CSV loader. It validates width and syntax without touching the
// table, so callers can parse-then-log-then-apply.
func (s *System) ParseRows(relation string, raw [][]string) ([]storage.Row, error) {
	tbl, err := s.db.Table(relation)
	if err != nil {
		return nil, err
	}
	schema := tbl.Schema()
	rows := make([]storage.Row, 0, len(raw))
	for i, cells := range raw {
		if len(cells) != len(schema.Cols) {
			return nil, fmt.Errorf("row %d has %d cells, schema %s has %d columns",
				i, len(cells), schema.Name, len(schema.Cols))
		}
		row := make(storage.Row, len(cells))
		for c, cell := range cells {
			v, err := storage.ParseCell(schema.Cols[c], cell)
			if err != nil {
				return nil, fmt.Errorf("row %d column %s: %w", i, schema.Cols[c].Name, err)
			}
			row[c] = v
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Ground runs the grounding module and returns its result.
func (s *System) Ground() (*grounding.Result, error) {
	return s.GroundContext(context.Background())
}

// GroundContext is Ground under a context: cancellation is honoured between
// grounding phases and inside the row/atom loops. A cancelled grounding
// returns the context error and leaves the previous grounding (if any)
// untouched.
func (s *System) GroundContext(ctx context.Context) (*grounding.Result, error) {
	if s.prog == nil {
		return nil, fmt.Errorf("core: no program loaded")
	}
	start := time.Now()
	res, err := grounding.New(s.prog, s.db, s.groundingOptions()).GroundContext(ctx)
	if err != nil {
		return nil, err
	}
	s.ground = res
	s.closeSampler() // the old sampler's graph is gone; release its pool
	s.pinned = nil   // prior pins are baked into the fresh graph's evidence
	s.local.Store(nil)
	s.groundDur = time.Since(start)
	if r := s.cfg.Metrics; r != nil {
		r.Gauge("sya_ground_vars").Set(float64(res.Stats.Vars))
		r.Gauge("sya_ground_logical_factors").Set(float64(res.Stats.LogicalFactors))
		r.Gauge("sya_ground_spatial_pairs").Set(float64(res.Stats.SpatialPairs))
		r.Gauge("sya_ground_workers").Set(float64(res.Stats.Workers))
		r.Gauge("sya_ground_rules_seconds").Set(res.Stats.RulesTime.Seconds())
		r.Gauge("sya_ground_spatial_seconds").Set(res.Stats.SpatialTime.Seconds())
		r.Gauge("sya_ground_seconds").Set(s.groundDur.Seconds())
	}
	return res, nil
}

// groundingOptions maps the System config onto grounding options — shared
// by the batch and delta grounding paths.
func (s *System) groundingOptions() grounding.Options {
	return grounding.Options{
		Metric:           s.cfg.Metric,
		Weighting:        s.cfg.Weighting,
		PruneThreshold:   s.cfg.PruneThreshold,
		SupportRadius:    s.cfg.SupportRadius,
		MaxNeighbors:     s.cfg.MaxNeighbors,
		UDFs:             s.cfg.UDFs,
		SkipFactorTables: s.cfg.SkipFactorTables,
		Workers:          s.cfg.GroundWorkers,
		Trace:            s.cfg.Trace,
	}
}

// closeSampler releases the live sampler (and its worker pool) and the
// sharded-inference group, if any. Called wherever the graph or its weights
// change, so the next inference rebuilds against fresh state.
func (s *System) closeSampler() {
	if s.sampler != nil {
		s.sampler.Close()
		s.sampler = nil
	}
	if s.shardGroup != nil {
		s.shardGroup.Close()
		s.shardGroup = nil
	}
}

// Close releases the System's resources — the pooled sampler and the shared
// worker-pool cache behind it, which own persistent worker goroutines. The
// System stays usable for loading and grounding; the next inference call
// builds a fresh sampler (and a fresh pool). Idempotent.
func (s *System) Close() {
	s.closeSampler()
	s.pool.Close()
	s.pool = gibbs.NewSharedPool()
}

// Grounding returns the last grounding result (nil before Ground).
func (s *System) Grounding() *grounding.Result { return s.ground }

// GroundingTime reports the wall time of the last Ground call.
func (s *System) GroundingTime() time.Duration { return s.groundDur }

// newSampler builds the engine's sampler over the ground graph.
func (s *System) newSampler() (gibbs.Sampler, error) {
	switch s.cfg.Engine {
	case EngineDeepDive:
		opts := []gibbs.SamplerOption{gibbs.WithSharedPool(s.pool)}
		if s.cfg.NoKernels {
			opts = append(opts, gibbs.NoKernels())
		}
		if s.cfg.ChunkGrain > 0 {
			opts = append(opts, gibbs.WithChunkGrain(s.cfg.ChunkGrain))
		}
		h := gibbs.NewHogwild(s.ground.Graph, s.cfg.Seed, s.cfg.Workers, opts...)
		h.SetBurnIn(s.burnIn(1))
		return h, nil
	default:
		return gibbs.NewSpatial(s.ground.Graph, gibbs.SpatialOptions{
			Levels:        s.cfg.PyramidLevels,
			LocalityLevel: s.cfg.LocalityLevel,
			Instances:     s.cfg.Instances,
			Workers:       s.cfg.Workers,
			Seed:          s.cfg.Seed,
			BurnIn:        s.burnIn(s.cfg.Instances),
			NoKernels:     s.cfg.NoKernels,
			ChunkGrain:    s.cfg.ChunkGrain,
			Shared:        s.pool,
		})
	}
}

// burnIn resolves the per-chain burn-in for a sampler running `chains`
// parallel chains over the configured epoch budget.
func (s *System) burnIn(chains int) int {
	switch {
	case s.cfg.BurnIn > 0:
		return s.cfg.BurnIn
	case s.cfg.BurnIn < 0:
		return 0
	default:
		return s.cfg.Epochs / (10 * chains)
	}
}

// Infer runs (or continues) inference for the configured number of epochs
// and returns the factual scores. Grounding must have run.
func (s *System) Infer() (*Scores, error) {
	return s.InferEpochs(s.cfg.Epochs)
}

// InferEpochs runs a specific number of total epochs. If the program
// declares @weight(?) rules and LearnWeights has not run, weights are
// learned first with default options.
func (s *System) InferEpochs(epochs int) (*Scores, error) {
	scores, _, err := s.InferContext(context.Background(), epochs)
	return scores, err
}

// InferContext is InferEpochs under a context. Cancellation (or a deadline)
// stops sampling within one dispatch chunk and still returns the scores
// estimated so far — partial marginals are statistically valid, just noisier
// — with stats.Reason recording why the run stopped and stats.Epochs how
// many full epochs it completed. A non-nil error means the run failed (for
// example a *gibbs.WorkerPanicError); cancellation alone is not an error.
//
// The sampler is built once per grounding and reused across inference calls
// (its worker pool persists); Close releases it. When CheckpointPath is
// configured, a freshly built sampler resumes from the checkpoint file if
// one exists and snapshots periodically while running.
func (s *System) InferContext(ctx context.Context, epochs int) (*Scores, gibbs.RunStats, error) {
	var stats gibbs.RunStats
	if s.ground == nil {
		return nil, stats, fmt.Errorf("core: Ground must run before Infer")
	}
	if !s.learned && s.hasLearnedRules() {
		if _, err := s.LearnWeightsContext(ctx, learn.Options{Seed: s.cfg.Seed, NoKernels: s.cfg.NoKernels}); err != nil {
			return nil, stats, fmt.Errorf("core: auto-learning @weight(?) rules: %w", err)
		}
	}
	if s.cfg.Shards > 1 {
		if s.cfg.Engine == EngineDeepDive {
			return nil, stats, fmt.Errorf("core: sharded inference needs the Sya engine")
		}
		if err := s.ensureShardGroup(); err != nil {
			return nil, stats, err
		}
		start := time.Now()
		stats, err := s.shardGroup.Run(ctx, epochs)
		s.inferDur += time.Since(start)
		if err != nil {
			return nil, stats, err
		}
		return s.scores(), stats, nil
	}
	if err := s.ensureSampler(); err != nil {
		return nil, stats, err
	}
	start := time.Now()
	var err error
	if sp, ok := s.sampler.(*gibbs.Spatial); ok {
		stats, err = sp.RunTotal(ctx, epochs)
	} else {
		stats, err = s.sampler.Run(ctx, epochs)
	}
	s.inferDur += time.Since(start)
	if err != nil {
		return nil, stats, err
	}
	return s.scores(), stats, nil
}

// ensureShardGroup builds the sharded-inference group if none is live:
// partition, per-shard subgraphs/samplers, transports (TCP when ShardAddrs
// is set, in-process channels otherwise) and per-shard checkpoint resume.
func (s *System) ensureShardGroup() error {
	if s.shardGroup != nil {
		return nil
	}
	opts := shard.Options{
		Shards:          s.cfg.Shards,
		Levels:          s.cfg.PyramidLevels,
		LocalityLevel:   s.cfg.LocalityLevel,
		Instances:       s.cfg.Instances,
		Workers:         s.cfg.Workers,
		Seed:            s.cfg.Seed,
		BurnIn:          s.burnIn(s.cfg.Instances),
		NoKernels:       s.cfg.NoKernels,
		ChunkGrain:      s.cfg.ChunkGrain,
		Metrics:         s.cfg.Metrics,
		CheckpointPath:  s.cfg.CheckpointPath,
		CheckpointEvery: s.cfg.CheckpointEvery,
	}
	if len(s.cfg.ShardAddrs) > 0 {
		if len(s.cfg.ShardAddrs) != s.cfg.Shards {
			return fmt.Errorf("core: %d shard addresses for %d shards", len(s.cfg.ShardAddrs), s.cfg.Shards)
		}
		trs := make([]shard.Transport, s.cfg.Shards)
		for i := range trs {
			tr, err := shard.NewTCPTransport(i, s.cfg.ShardAddrs)
			if err != nil {
				for _, prior := range trs[:i] {
					prior.Close()
				}
				return fmt.Errorf("core: %w", err)
			}
			trs[i] = tr
		}
		opts.Transports = trs
	}
	gr, err := shard.New(s.ground.Graph, opts)
	if err != nil {
		for _, tr := range opts.Transports {
			tr.Close()
		}
		return fmt.Errorf("core: building shard group: %w", err)
	}
	s.shardGroup = gr
	return nil
}

// ShardGroup exposes the live sharded-inference group (nil unless
// cfg.Shards > 1 and inference has run).
func (s *System) ShardGroup() *shard.Group { return s.shardGroup }

// ensureSampler builds (and possibly resumes) the engine sampler if none is
// live, wiring the observability plane into it.
func (s *System) ensureSampler() error {
	if s.sampler != nil {
		return nil
	}
	sampler, err := s.newSampler()
	if err != nil {
		return err
	}
	sampler.SetMetrics(gibbs.NewMetrics(s.cfg.Metrics))
	sampler.SetTrace(s.cfg.Trace)
	sampler.SetProgress(s.cfg.ProgressEvery, s.cfg.Progress)
	if s.cfg.CheckpointPath != "" {
		from, resumeErr := gibbs.ResumeFrom(sampler, s.cfg.CheckpointPath)
		switch {
		case resumeErr == nil:
			fallback := from != s.cfg.CheckpointPath
			if s.cfg.Metrics != nil {
				s.cfg.Metrics.Counter("sya_checkpoint_resumes_total").Inc()
				if fallback {
					s.cfg.Metrics.Counter("sya_checkpoint_resume_fallbacks_total").Inc()
				}
			}
			s.cfg.Trace.Emit("inference", "resume",
				"sampler", sampler.Name(), "path", from, "fallback", fallback,
				"epoch", sampler.TotalEpochs())
		case os.IsNotExist(resumeErr):
			// No checkpoint of either generation: a fresh run.
		default:
			sampler.Close()
			return fmt.Errorf("core: resuming from %s: %w", s.cfg.CheckpointPath, resumeErr)
		}
		sampler.SetCheckpointer(&gibbs.Checkpointer{Path: s.cfg.CheckpointPath, Every: s.cfg.CheckpointEvery})
	}
	s.sampler = sampler
	return nil
}

// InferenceTime reports the cumulative wall time spent sampling.
func (s *System) InferenceTime() time.Duration { return s.inferDur }

// Sampler exposes the live sampler (nil before Infer).
func (s *System) Sampler() gibbs.Sampler { return s.sampler }

// UpdateEvidence pins a ground atom to a value (incremental inference; Sya
// engine only) — the atom is identified by its relation and term values.
func (s *System) UpdateEvidence(relation string, vals []storage.Value, value int32) error {
	sp, ok := s.sampler.(*gibbs.Spatial)
	if !ok {
		return fmt.Errorf("core: incremental evidence updates need the Sya engine with a live sampler")
	}
	vid, ok := s.VarIDFor(relation, vals)
	if !ok {
		return fmt.Errorf("core: no ground atom %s(%v)", relation, vals)
	}
	if err := sp.UpdateEvidence(vid, value); err != nil {
		return err
	}
	if s.pinned == nil {
		s.pinned = map[factorgraph.VarID]bool{}
	}
	s.pinned[vid] = true
	return nil
}

// InferIncremental resamples only the concliques affected by evidence
// updates (paper Fig. 13a). Sya engine only.
func (s *System) InferIncremental(epochs int) (*Scores, error) {
	scores, _, err := s.InferIncrementalContext(context.Background(), epochs)
	return scores, err
}

// InferIncrementalContext is InferIncremental under a context, with the
// same cancellation and error semantics as InferContext.
func (s *System) InferIncrementalContext(ctx context.Context, epochs int) (*Scores, gibbs.RunStats, error) {
	var stats gibbs.RunStats
	sp, ok := s.sampler.(*gibbs.Spatial)
	if !ok {
		return nil, stats, fmt.Errorf("core: incremental inference needs the Sya engine with a live sampler")
	}
	start := time.Now()
	stats, err := sp.RunIncrementalContext(ctx, epochs)
	s.inferDur += time.Since(start)
	if err != nil {
		return nil, stats, err
	}
	return s.scores(), stats, nil
}

// LearnWeights learns the inference rules' tied weights (and optionally a
// spatial-scale multiplier) from the graph's evidence by contrastive
// divergence, updating the ground factor graph in place. It must run after
// Ground and before (or instead of the program's fixed weights for) Infer;
// any live sampler is reset so inference restarts under the learned
// weights. It returns the learned weight per rule, keyed by rule name.
func (s *System) LearnWeights(opts learn.Options) (map[string]float64, error) {
	return s.LearnWeightsContext(context.Background(), opts)
}

// LearnWeightsContext is LearnWeights under a context, checked between
// gradient iterations; a cancelled run returns the context error.
func (s *System) LearnWeightsContext(ctx context.Context, opts learn.Options) (map[string]float64, error) {
	if s.ground == nil {
		return nil, fmt.Errorf("core: Ground must run before LearnWeights")
	}
	if opts.Trace == nil {
		opts.Trace = s.cfg.Trace
	}
	res, err := learn.Weights(ctx, s.ground.Graph, s.ground.FactorRule, len(s.ground.RuleNames), opts)
	if err != nil {
		return nil, err
	}
	s.learned = true
	s.closeSampler() // resample under the learned weights
	out := make(map[string]float64, len(res.Weights))
	for i, w := range res.Weights {
		out[s.ground.RuleNames[i]] = w
	}
	return out, nil
}

// SaveGraph writes the ground factor graph to w (the paper persists its
// ground factor graph in the database so grounding can be reused; this is
// the file equivalent). Ground must have run.
func (s *System) SaveGraph(w io.Writer) error {
	if s.ground == nil {
		return fmt.Errorf("core: Ground must run before SaveGraph")
	}
	_, err := s.ground.Graph.WriteTo(w)
	return err
}

// World is a single joint assignment of all ground atoms — the output of
// MAP inference.
type World struct {
	assign factorgraph.Assignment
	Energy float64
	ground *grounding.Result
}

// Value returns the atom's value in the world (0/1 for binary atoms).
func (w *World) Value(relation string, vals []storage.Value) (int32, bool) {
	vid, ok := w.ground.VarID[grounding.AtomKey(relation, vals)]
	if !ok {
		return 0, false
	}
	return w.assign[vid], true
}

// MAP estimates the most probable world by simulated annealing (see
// gibbs.MAP). Grounding must have run.
func (s *System) MAP(opts gibbs.MAPOptions) (*World, error) {
	world, _, err := s.MAPContext(context.Background(), opts)
	return world, err
}

// MAPContext is MAP under a context. On cancellation the best (greedily
// polished) world found so far is still returned; interrupted reports
// whether annealing ran to completion.
func (s *System) MAPContext(ctx context.Context, opts gibbs.MAPOptions) (world *World, interrupted bool, err error) {
	if s.ground == nil {
		return nil, false, fmt.Errorf("core: Ground must run before MAP")
	}
	assign, energy, ctxErr := gibbs.MAPContext(ctx, s.ground.Graph, opts)
	if assign == nil {
		return nil, true, ctxErr
	}
	return &World{assign: assign, Energy: energy, ground: s.ground}, ctxErr != nil, nil
}

// hasLearnedRules reports whether the program declares @weight(?) rules.
func (s *System) hasLearnedRules() bool {
	if s.prog == nil {
		return false
	}
	for _, r := range s.prog.Rules {
		if r.LearnedWeight {
			return true
		}
	}
	return false
}

// VarIDFor resolves a ground atom.
func (s *System) VarIDFor(relation string, vals []storage.Value) (factorgraph.VarID, bool) {
	if s.ground == nil {
		return 0, false
	}
	vid, ok := s.ground.VarID[grounding.AtomKey(relation, vals)]
	return vid, ok
}

// Scores holds inference output.
type Scores struct {
	// Marginals per variable per value.
	Marginals [][]float64
	ground    *grounding.Result
}

func (s *System) scores() *Scores {
	if s.shardGroup != nil {
		return &Scores{Marginals: s.shardGroup.Marginals(), ground: s.ground}
	}
	return &Scores{Marginals: s.sampler.Marginals(), ground: s.ground}
}

// TrueProb returns the factual score (P(value 1)) of a binary ground atom
// by relation and term values.
func (sc *Scores) TrueProb(relation string, vals []storage.Value) (float64, bool) {
	vid, ok := sc.ground.VarID[grounding.AtomKey(relation, vals)]
	if !ok {
		return 0, false
	}
	m := sc.Marginals[vid]
	if len(m) < 2 {
		return 0, false
	}
	return m[1], true
}

// Marginal returns the full marginal distribution of a ground atom.
func (sc *Scores) Marginal(relation string, vals []storage.Value) ([]float64, bool) {
	vid, ok := sc.ground.VarID[grounding.AtomKey(relation, vals)]
	if !ok {
		return nil, false
	}
	return sc.Marginals[vid], true
}

// Each iterates ground atoms of a relation with their marginals, in
// unspecified order.
func (sc *Scores) Each(relation string, fn func(key string, vid factorgraph.VarID, marginal []float64) bool) {
	prefix := strings.ToLower(relation) + "|"
	for key, vid := range sc.ground.VarID {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		if !fn(key, vid, sc.Marginals[vid]) {
			return
		}
	}
}
