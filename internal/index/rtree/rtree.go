// Package rtree implements a dynamic R-tree (Guttman [20] in the paper's
// references) with quadratic split, plus an STR bulk loader. The grounding
// module builds on-the-fly R-tree indexes over relations with spatial
// attributes to accelerate spatial join and range predicates
// (paper Section IV-B, optimization 1).
package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Item is an indexed entry: a bounding rectangle plus an opaque payload
// (typically a tuple identifier).
type Item struct {
	Rect geom.Rect
	Data int64
}

const (
	maxEntries = 16
	minEntries = maxEntries * 2 / 5 // 40% fill, the usual Guttman setting
)

type node struct {
	rect     geom.Rect
	leaf     bool
	items    []Item  // leaf payloads
	children []*node // interior children
}

// Tree is a dynamic R-tree. The zero value is not usable; call New or Bulk.
type Tree struct {
	root *node
	size int
}

// New returns an empty R-tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) {
	t.size++
	leaf := t.chooseLeaf(t.root, it.Rect)
	leaf.items = append(leaf.items, it)
	leaf.rect = extend(leaf.rect, it.Rect, len(leaf.items) == 1 && len(leaf.children) == 0)
	t.adjustPath(it.Rect)
	if len(leaf.items) > maxEntries {
		t.splitUpward(leaf)
	}
}

// chooseLeaf descends to the leaf whose rectangle needs the least
// enlargement to include r, resolving ties by smaller area.
func (t *Tree) chooseLeaf(n *node, r geom.Rect) *node {
	for !n.leaf {
		best := n.children[0]
		bestEnl := enlargement(best.rect, r)
		for _, c := range n.children[1:] {
			enl := enlargement(c.rect, r)
			if enl < bestEnl || (enl == bestEnl && c.rect.Area() < best.rect.Area()) {
				best, bestEnl = c, enl
			}
		}
		best.rect = best.rect.Union(r)
		n = best
	}
	return n
}

// adjustPath re-unions the root rect (children rects were adjusted during
// descent).
func (t *Tree) adjustPath(r geom.Rect) {
	if t.size == 1 {
		t.root.rect = r
		return
	}
	t.root.rect = t.root.rect.Union(r)
}

func extend(base, add geom.Rect, first bool) geom.Rect {
	if first {
		return add
	}
	return base.Union(add)
}

func enlargement(base, add geom.Rect) float64 {
	return base.Union(add).Area() - base.Area()
}

// splitUpward splits an overflowing node and propagates splits to the root.
func (t *Tree) splitUpward(n *node) {
	path := t.findPath(t.root, n, nil)
	for i := len(path) - 1; i >= 0; i-- {
		cur := path[i]
		if !overflow(cur) {
			continue
		}
		left, right := split(cur)
		if i == 0 { // split the root: grow the tree
			t.root = &node{
				leaf:     false,
				rect:     left.rect.Union(right.rect),
				children: []*node{left, right},
			}
			continue
		}
		parent := path[i-1]
		for j, c := range parent.children {
			if c == cur {
				parent.children[j] = left
				break
			}
		}
		parent.children = append(parent.children, right)
		parent.rect = recomputeRect(parent)
	}
}

func overflow(n *node) bool {
	if n.leaf {
		return len(n.items) > maxEntries
	}
	return len(n.children) > maxEntries
}

// findPath returns the root-to-n path. R-trees are shallow (fanout 16), so
// the descent is cheap; we re-find the path rather than store parent
// pointers to keep nodes small.
func (t *Tree) findPath(cur, target *node, acc []*node) []*node {
	acc = append(acc, cur)
	if cur == target {
		return acc
	}
	if cur.leaf {
		return nil
	}
	for _, c := range cur.children {
		if c.rect.ContainsRect(target.rect) || c.rect.Intersects(target.rect) {
			if p := t.findPath(c, target, acc); p != nil {
				return p
			}
		}
	}
	return nil
}

// split performs Guttman's quadratic split on an overflowing node.
func split(n *node) (*node, *node) {
	if n.leaf {
		la, lb := quadraticSplitRects(itemRects(n.items))
		left := &node{leaf: true}
		right := &node{leaf: true}
		for _, i := range la {
			left.items = append(left.items, n.items[i])
		}
		for _, i := range lb {
			right.items = append(right.items, n.items[i])
		}
		left.rect = recomputeRect(left)
		right.rect = recomputeRect(right)
		return left, right
	}
	la, lb := quadraticSplitRects(childRects(n.children))
	left := &node{}
	right := &node{}
	for _, i := range la {
		left.children = append(left.children, n.children[i])
	}
	for _, i := range lb {
		right.children = append(right.children, n.children[i])
	}
	left.rect = recomputeRect(left)
	right.rect = recomputeRect(right)
	return left, right
}

func itemRects(items []Item) []geom.Rect {
	rs := make([]geom.Rect, len(items))
	for i, it := range items {
		rs[i] = it.Rect
	}
	return rs
}

func childRects(children []*node) []geom.Rect {
	rs := make([]geom.Rect, len(children))
	for i, c := range children {
		rs[i] = c.rect
	}
	return rs
}

// quadraticSplitRects partitions indexes of rects into two groups using
// Guttman's quadratic PickSeeds / PickNext.
func quadraticSplitRects(rects []geom.Rect) (a, b []int) {
	n := len(rects)
	// PickSeeds: pair with greatest dead area.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	a = append(a, s1)
	b = append(b, s2)
	ra, rb := rects[s1], rects[s2]
	assigned := make([]bool, n)
	assigned[s1], assigned[s2] = true, true
	remaining := n - 2
	for remaining > 0 {
		// Force assignment when one group must take all the rest to reach
		// the minimum fill.
		if len(a)+remaining == minEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					a = append(a, i)
					ra = ra.Union(rects[i])
					assigned[i] = true
				}
			}
			return a, b
		}
		if len(b)+remaining == minEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					b = append(b, i)
					rb = rb.Union(rects[i])
					assigned[i] = true
				}
			}
			return a, b
		}
		// PickNext: entry with max preference difference.
		next, bestDiff := -1, math.Inf(-1)
		var da, db float64
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			ea := enlargement(ra, rects[i])
			eb := enlargement(rb, rects[i])
			if diff := math.Abs(ea - eb); diff > bestDiff {
				next, bestDiff, da, db = i, diff, ea, eb
			}
		}
		assigned[next] = true
		remaining--
		if da < db || (da == db && len(a) < len(b)) {
			a = append(a, next)
			ra = ra.Union(rects[next])
		} else {
			b = append(b, next)
			rb = rb.Union(rects[next])
		}
	}
	return a, b
}

func recomputeRect(n *node) geom.Rect {
	if n.leaf {
		if len(n.items) == 0 {
			return geom.Rect{}
		}
		r := n.items[0].Rect
		for _, it := range n.items[1:] {
			r = r.Union(it.Rect)
		}
		return r
	}
	if len(n.children) == 0 {
		return geom.Rect{}
	}
	r := n.children[0].rect
	for _, c := range n.children[1:] {
		r = r.Union(c.rect)
	}
	return r
}

// Search calls fn for every item whose rectangle intersects q. Returning
// false from fn stops the search early.
func (t *Tree) Search(q geom.Rect, fn func(Item) bool) {
	if t.size == 0 {
		return
	}
	searchNode(t.root, q, fn)
}

func searchNode(n *node, q geom.Rect, fn func(Item) bool) bool {
	if !n.rect.Intersects(q) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Rect.Intersects(q) {
				if !fn(it) {
					return false
				}
			}
		}
		return true
	}
	for _, c := range n.children {
		if !searchNode(c, q, fn) {
			return false
		}
	}
	return true
}

// SearchAll returns all items intersecting q.
func (t *Tree) SearchAll(q geom.Rect) []Item {
	var out []Item
	t.Search(q, func(it Item) bool {
		out = append(out, it)
		return true
	})
	return out
}

// NearestK returns up to k items closest to p by rectangle distance,
// in increasing distance order, using best-first branch-and-bound.
func (t *Tree) NearestK(p geom.Point, k int) []Item {
	if t.size == 0 || k <= 0 {
		return nil
	}
	type cand struct {
		dist float64
		n    *node
		it   Item
		leaf bool
	}
	// A simple binary heap over cands.
	heap := []cand{{dist: geom.DistancePointRect(p, t.root.rect), n: t.root}}
	push := func(c cand) {
		heap = append(heap, c)
		for i := len(heap) - 1; i > 0; {
			parent := (i - 1) / 2
			if heap[parent].dist <= heap[i].dist {
				break
			}
			heap[parent], heap[i] = heap[i], heap[parent]
			i = parent
		}
	}
	pop := func() cand {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l].dist < heap[small].dist {
				small = l
			}
			if r < last && heap[r].dist < heap[small].dist {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return top
	}
	var out []Item
	for len(heap) > 0 && len(out) < k {
		c := pop()
		switch {
		case c.leaf:
			out = append(out, c.it)
		case c.n.leaf:
			for _, it := range c.n.items {
				push(cand{dist: geom.DistancePointRect(p, it.Rect), it: it, leaf: true})
			}
		default:
			for _, child := range c.n.children {
				push(cand{dist: geom.DistancePointRect(p, child.rect), n: child})
			}
		}
	}
	return out
}

// Bulk builds an R-tree from items using Sort-Tile-Recursive packing, which
// produces a well-clustered tree much faster than repeated Insert. The input
// slice is reordered in place.
func Bulk(items []Item) *Tree {
	t := &Tree{size: len(items)}
	if len(items) == 0 {
		t.root = &node{leaf: true}
		return t
	}
	leaves := strPack(items)
	level := leaves
	for len(level) > 1 {
		level = packNodes(level)
	}
	t.root = level[0]
	return t
}

func strPack(items []Item) []*node {
	n := len(items)
	leafCount := (n + maxEntries - 1) / maxEntries
	sliceCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := sliceCount * maxEntries
	sort.Slice(items, func(i, j int) bool {
		return items[i].Rect.Center().X < items[j].Rect.Center().X
	})
	var leaves []*node
	for s := 0; s < n; s += perSlice {
		end := s + perSlice
		if end > n {
			end = n
		}
		slice := items[s:end]
		sort.Slice(slice, func(i, j int) bool {
			return slice[i].Rect.Center().Y < slice[j].Rect.Center().Y
		})
		for o := 0; o < len(slice); o += maxEntries {
			e := o + maxEntries
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &node{leaf: true, items: append([]Item(nil), slice[o:e]...)}
			leaf.rect = recomputeRect(leaf)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packNodes(level []*node) []*node {
	sort.Slice(level, func(i, j int) bool {
		return level[i].rect.Center().X < level[j].rect.Center().X
	})
	var parents []*node
	for o := 0; o < len(level); o += maxEntries {
		e := o + maxEntries
		if e > len(level) {
			e = len(level)
		}
		p := &node{children: append([]*node(nil), level[o:e]...)}
		p.rect = recomputeRect(p)
		parents = append(parents, p)
	}
	return parents
}
