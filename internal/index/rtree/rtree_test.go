package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randomItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		items[i] = Item{
			Rect: geom.NewRect(p, geom.Pt(p.X+rng.Float64()*5, p.Y+rng.Float64()*5)),
			Data: int64(i),
		}
	}
	return items
}

func linearSearch(items []Item, q geom.Rect) map[int64]bool {
	out := map[int64]bool{}
	for _, it := range items {
		if it.Rect.Intersects(q) {
			out[it.Data] = true
		}
	}
	return out
}

func treeSearch(t *Tree, q geom.Rect) map[int64]bool {
	out := map[int64]bool{}
	t.Search(q, func(it Item) bool {
		out[it.Data] = true
		return true
	})
	return out
}

func sameSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if got := tr.SearchAll(geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))); len(got) != 0 {
		t.Errorf("search on empty tree returned %d items", len(got))
	}
	if got := tr.NearestK(geom.Pt(0, 0), 3); got != nil {
		t.Errorf("NearestK on empty tree = %v", got)
	}
}

func TestInsertMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := randomItems(rng, 500)
	tr := New()
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(items))
	}
	for q := 0; q < 50; q++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		query := geom.NewRect(p, geom.Pt(p.X+rng.Float64()*120, p.Y+rng.Float64()*120))
		want := linearSearch(items, query)
		got := treeSearch(tr, query)
		if !sameSet(got, want) {
			t.Fatalf("query %d: got %d items, want %d", q, len(got), len(want))
		}
	}
}

func TestBulkMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := randomItems(rng, 2000)
	reference := append([]Item(nil), items...)
	tr := Bulk(items)
	if tr.Len() != len(reference) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for q := 0; q < 50; q++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		query := geom.NewRect(p, geom.Pt(p.X+rng.Float64()*80, p.Y+rng.Float64()*80))
		want := linearSearch(reference, query)
		got := treeSearch(tr, query)
		if !sameSet(got, want) {
			t.Fatalf("query %d: got %d items, want %d", q, len(got), len(want))
		}
	}
}

func TestBulkSmallSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 15, 16, 17, 100} {
		items := randomItems(rng, n)
		reference := append([]Item(nil), items...)
		tr := Bulk(items)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		all := treeSearch(tr, geom.NewRect(geom.Pt(-10, -10), geom.Pt(2000, 2000)))
		if len(all) != n {
			t.Fatalf("n=%d: full search got %d", n, len(all))
		}
		_ = reference
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := Bulk(randomItems(rng, 300))
	count := 0
	tr.Search(geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000)), func(Item) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d items, want 5", count)
	}
}

func TestNearestK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randomItems(rng, 400)
	reference := append([]Item(nil), items...)
	tr := Bulk(items)
	for q := 0; q < 20; q++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(10)
		got := tr.NearestK(p, k)
		if len(got) != k {
			t.Fatalf("NearestK returned %d, want %d", len(got), k)
		}
		// Brute-force expected distances.
		dists := make([]float64, len(reference))
		for i, it := range reference {
			dists[i] = geom.DistancePointRect(p, it.Rect)
		}
		sort.Float64s(dists)
		for i, it := range got {
			d := geom.DistancePointRect(p, it.Rect)
			if d != dists[i] {
				t.Fatalf("nearest %d: dist %v, want %v", i, d, dists[i])
			}
		}
	}
}

func TestInsertIncremental(t *testing.T) {
	// Interleave inserts and queries to exercise split paths repeatedly.
	rng := rand.New(rand.NewSource(6))
	tr := New()
	var items []Item
	for i := 0; i < 300; i++ {
		it := randomItems(rng, 1)[0]
		it.Data = int64(i)
		items = append(items, it)
		tr.Insert(it)
		if i%37 == 0 {
			q := geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))
			if got := treeSearch(tr, q); len(got) != len(items) {
				t.Fatalf("after %d inserts: full query got %d", i+1, len(got))
			}
		}
	}
}

func TestDuplicateRects(t *testing.T) {
	tr := New()
	r := geom.NewRect(geom.Pt(1, 1), geom.Pt(2, 2))
	for i := 0; i < 50; i++ {
		tr.Insert(Item{Rect: r, Data: int64(i)})
	}
	got := tr.SearchAll(r)
	if len(got) != 50 {
		t.Errorf("duplicate search = %d, want 50", len(got))
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	items := randomItems(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]Item(nil), items...)
		Bulk(buf)
	}
}

func BenchmarkSearch10k(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	tr := Bulk(randomItems(rng, 10000))
	q := geom.NewRect(geom.Pt(100, 100), geom.Pt(200, 200))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Search(q, func(Item) bool { n++; return true })
	}
}
