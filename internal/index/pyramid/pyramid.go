// Package pyramid implements the in-memory partial pyramid index of the
// paper's inference module (Section V, "In-memory Spatial Factor Graph
// Index"), after Aref & Samet [3].
//
// The index decomposes a bounding space into L locality levels; level l is a
// 4^l grid. Every maintained cell stores the IDs of the spatial ground atoms
// whose location falls inside its region, so an atom contributes to one
// pointer-based index per level, from level 1 down to the lowest maintained
// cell containing it. The pyramid is *partial*: after the initial complete
// build, quadrants whose four children include at least three empty cells
// are merged into their parent, and a maintained cell is split again only
// when it exceeds a capacity threshold and its contents span at least two
// children — exactly the merge/split policy the paper describes for
// incremental updates.
package pyramid

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// CellKey addresses one pyramid cell: grid coordinates (X, Y) at a level,
// with level 0 being the single root cell.
type CellKey struct {
	Level int
	X, Y  int
}

// Cell is one maintained pyramid cell.
type Cell struct {
	Key     CellKey
	Region  geom.Rect
	Entries []int64 // IDs of atoms located in Region, sorted ascending
}

// Entry is an indexed spatial ground atom: its variable ID and location.
type Entry struct {
	ID  int64
	Loc geom.Point
}

// Index is a partial pyramid index. Create with Build; not safe for
// concurrent mutation (the spatial Gibbs sampler reads it concurrently but
// mutates it only between epochs).
type Index struct {
	space    geom.Rect
	levels   int
	capacity int
	cells    map[CellKey]*Cell
	locs     map[int64]geom.Point
}

// Options configures Build.
type Options struct {
	// Levels is the pyramid height L (the paper uses L = 8). Must be ≥ 1.
	Levels int
	// Capacity is the split threshold for incremental inserts. Zero means 32.
	Capacity int
}

const defaultCapacity = 32

// Build constructs a partial pyramid over the given space from the entries:
// a complete pyramid of height L is filled, then quadrants with three or
// more empty children are merged bottom-up (the paper's initial build).
// Entries outside the space are clamped to its boundary cell.
func Build(space geom.Rect, entries []Entry, opts Options) (*Index, error) {
	if opts.Levels < 1 {
		return nil, fmt.Errorf("pyramid: Levels must be >= 1, got %d", opts.Levels)
	}
	if !space.Valid() || space.Width() <= 0 || space.Height() <= 0 {
		return nil, fmt.Errorf("pyramid: invalid space %+v", space)
	}
	cap := opts.Capacity
	if cap <= 0 {
		cap = defaultCapacity
	}
	idx := &Index{
		space:    space,
		levels:   opts.Levels,
		capacity: cap,
		cells:    make(map[CellKey]*Cell),
		locs:     make(map[int64]geom.Point, len(entries)),
	}
	for _, e := range entries {
		if _, dup := idx.locs[e.ID]; dup {
			return nil, fmt.Errorf("pyramid: duplicate entry ID %d", e.ID)
		}
		idx.locs[e.ID] = e.Loc
	}
	// Complete build: place every entry at every level.
	for _, e := range entries {
		for l := 0; l < idx.levels; l++ {
			key := idx.keyAt(e.Loc, l)
			c := idx.cells[key]
			if c == nil {
				c = &Cell{Key: key, Region: idx.cellRegion(key)}
				idx.cells[key] = c
			}
			c.Entries = append(c.Entries, e.ID)
		}
	}
	for _, c := range idx.cells {
		sort.Slice(c.Entries, func(i, j int) bool { return c.Entries[i] < c.Entries[j] })
	}
	idx.mergeSparseQuadrants()
	return idx, nil
}

// Levels returns the pyramid height L.
func (x *Index) Levels() int { return x.levels }

// Space returns the indexed bounding space.
func (x *Index) Space() geom.Rect { return x.space }

// Len returns the number of indexed entries.
func (x *Index) Len() int { return len(x.locs) }

// keyAt returns the cell key containing p at the level, clamping p into the
// space.
func (x *Index) keyAt(p geom.Point, level int) CellKey {
	n := 1 << level // grid is n×n
	fx := (p.X - x.space.Min.X) / x.space.Width()
	fy := (p.Y - x.space.Min.Y) / x.space.Height()
	cx := int(fx * float64(n))
	cy := int(fy * float64(n))
	if cx < 0 {
		cx = 0
	}
	if cx >= n {
		cx = n - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= n {
		cy = n - 1
	}
	return CellKey{Level: level, X: cx, Y: cy}
}

// cellRegion returns the spatial region of a cell key.
func (x *Index) cellRegion(k CellKey) geom.Rect {
	n := float64(int(1) << k.Level)
	w := x.space.Width() / n
	h := x.space.Height() / n
	min := geom.Pt(x.space.Min.X+float64(k.X)*w, x.space.Min.Y+float64(k.Y)*h)
	return geom.Rect{Min: min, Max: geom.Pt(min.X+w, min.Y+h)}
}

// mergeSparseQuadrants scans levels bottom-up and removes all four children
// of a parent when at least three of the quadrant cells are empty
// (the paper's post-build merging step). The parent keeps full coverage
// because every level stores all contained entries.
func (x *Index) mergeSparseQuadrants() {
	for l := x.levels - 1; l >= 1; l-- {
		n := 1 << (l - 1)
		for py := 0; py < n; py++ {
			for px := 0; px < n; px++ {
				x.maybeMergeQuadrant(l, px, py)
			}
		}
	}
}

// maybeMergeQuadrant merges the four level-l children of parent (px, py) at
// level l-1 if at least three are empty or absent. Children that themselves
// still have maintained descendants are not merged. It reports whether a
// merge happened.
func (x *Index) maybeMergeQuadrant(l, px, py int) bool {
	empty := 0
	var present []*Cell
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			k := CellKey{Level: l, X: 2*px + dx, Y: 2*py + dy}
			c := x.cells[k]
			if c == nil || len(c.Entries) == 0 {
				empty++
				if c != nil {
					present = append(present, c)
				}
				continue
			}
			if x.hasMaintainedChildren(k) {
				return false // deeper structure exists; keep this quadrant
			}
			present = append(present, c)
		}
	}
	if empty < 3 {
		return false
	}
	for _, c := range present {
		delete(x.cells, c.Key)
	}
	return len(present) > 0
}

func (x *Index) hasMaintainedChildren(k CellKey) bool {
	if k.Level+1 >= x.levels {
		return false
	}
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			if _, ok := x.cells[CellKey{Level: k.Level + 1, X: 2*k.X + dx, Y: 2*k.Y + dy}]; ok {
				return true
			}
		}
	}
	return false
}

// NonEmptyCells returns the maintained, non-empty cells of a level, sorted
// by (Y, X) for determinism.
func (x *Index) NonEmptyCells(level int) []*Cell {
	var out []*Cell
	for k, c := range x.cells {
		if k.Level == level && len(c.Entries) > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Y != out[j].Key.Y {
			return out[i].Key.Y < out[j].Key.Y
		}
		return out[i].Key.X < out[j].Key.X
	})
	return out
}

// Cell returns the maintained cell for a key, or nil.
func (x *Index) Cell(k CellKey) *Cell { return x.cells[k] }

// Chain returns the maintained chain of cells containing p, from the root
// down to the lowest maintained cell. The incremental inference path uses
// it to find the cells affected by an updated atom.
func (x *Index) Chain(p geom.Point) []*Cell {
	var out []*Cell
	for l := 0; l < x.levels; l++ {
		c := x.cells[x.keyAt(p, l)]
		if c == nil {
			break
		}
		out = append(out, c)
	}
	return out
}

// LowestCell returns the lowest maintained cell containing p.
func (x *Index) LowestCell(p geom.Point) *Cell {
	var lowest *Cell
	for l := 0; l < x.levels; l++ {
		c := x.cells[x.keyAt(p, l)]
		if c == nil {
			break
		}
		lowest = c
	}
	return lowest
}

// Locate returns the location of an indexed entry.
func (x *Index) Locate(id int64) (geom.Point, bool) {
	p, ok := x.locs[id]
	return p, ok
}

// Insert adds an entry incrementally: the ID is appended to the maintained
// cell chain covering its location, and the lowest cell is split when it
// exceeds the capacity threshold and its contents span at least two
// children (the paper's incremental split rule).
func (x *Index) Insert(e Entry) error {
	if _, dup := x.locs[e.ID]; dup {
		return fmt.Errorf("pyramid: duplicate entry ID %d", e.ID)
	}
	x.locs[e.ID] = e.Loc
	var lowest *Cell
	for l := 0; l < x.levels; l++ {
		key := x.keyAt(e.Loc, l)
		c := x.cells[key]
		if c == nil {
			if l > 0 {
				break // the parent is the lowest maintained cell
			}
			c = &Cell{Key: key, Region: x.cellRegion(key)}
			x.cells[key] = c
		}
		c.Entries = insertSorted(c.Entries, e.ID)
		lowest = c
	}
	if lowest != nil {
		x.maybeSplit(lowest)
	}
	return nil
}

func insertSorted(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// maybeSplit splits cell c into its children when it is over capacity, not
// at the deepest level, and its contents span at least two children.
// Splitting cascades while the new lowest cell still violates the rule.
func (x *Index) maybeSplit(c *Cell) {
	for c != nil && c.Key.Level+1 < x.levels && len(c.Entries) > x.capacity {
		children := map[CellKey][]int64{}
		for _, id := range c.Entries {
			k := x.keyAt(x.locs[id], c.Key.Level+1)
			children[k] = append(children[k], id)
		}
		if len(children) < 2 {
			return // contents do not span two children
		}
		var largest *Cell
		for k, ids := range children {
			child := &Cell{Key: k, Region: x.cellRegion(k), Entries: ids}
			x.cells[k] = child
			if largest == nil || len(child.Entries) > len(largest.Entries) {
				largest = child
			}
		}
		c = largest
	}
}

// Delete removes an entry incrementally and merges quadrants that became
// sparse.
func (x *Index) Delete(id int64) error {
	loc, ok := x.locs[id]
	if !ok {
		return fmt.Errorf("pyramid: unknown entry ID %d", id)
	}
	delete(x.locs, id)
	var deepestKey CellKey
	found := false
	for l := 0; l < x.levels; l++ {
		key := x.keyAt(loc, l)
		c := x.cells[key]
		if c == nil {
			break
		}
		c.Entries = removeSorted(c.Entries, id)
		deepestKey = key
		found = true
	}
	if found {
		// Cascade merges upward while removal leaves sparse quadrants.
		for k := deepestKey; k.Level >= 1; k = (CellKey{Level: k.Level - 1, X: k.X / 2, Y: k.Y / 2}) {
			if !x.maybeMergeQuadrant(k.Level, k.X/2, k.Y/2) {
				break
			}
		}
	}
	return nil
}

// CheckInvariants verifies structural invariants, for tests: every entry
// appears in a maintained chain from the root to its lowest cell; each
// maintained cell's entries are exactly the indexed entries within its
// region; entry lists are sorted and duplicate-free.
func (x *Index) CheckInvariants() error {
	for id, loc := range x.locs {
		root := x.cells[x.keyAt(loc, 0)]
		if root == nil || !containsID(root.Entries, id) {
			return fmt.Errorf("entry %d missing from root cell", id)
		}
		// Completeness: wherever a maintained cell covers the entry's
		// location, the entry must be indexed in it.
		for l := 0; l < x.levels; l++ {
			c := x.cells[x.keyAt(loc, l)]
			if c == nil {
				break
			}
			if !containsID(c.Entries, id) {
				return fmt.Errorf("entry %d missing from maintained cell %v", id, c.Key)
			}
		}
	}
	for k, c := range x.cells {
		if k != c.Key {
			return fmt.Errorf("cell key mismatch: map %v vs cell %v", k, c.Key)
		}
		for i := 1; i < len(c.Entries); i++ {
			if c.Entries[i-1] >= c.Entries[i] {
				return fmt.Errorf("cell %v entries not strictly sorted", k)
			}
		}
		for _, id := range c.Entries {
			loc, ok := x.locs[id]
			if !ok {
				return fmt.Errorf("cell %v references unknown entry %d", k, id)
			}
			if x.keyAt(loc, k.Level) != k {
				return fmt.Errorf("entry %d at %v stored in wrong cell %v", id, loc, k)
			}
		}
		// Every maintained non-root cell must have a maintained parent that
		// also holds its entries (the level-chain property).
		if k.Level > 0 {
			parent := x.cells[CellKey{Level: k.Level - 1, X: k.X / 2, Y: k.Y / 2}]
			if parent == nil {
				return fmt.Errorf("cell %v has no maintained parent", k)
			}
			for _, id := range c.Entries {
				if !containsID(parent.Entries, id) {
					return fmt.Errorf("entry %d in %v missing from parent", id, k)
				}
			}
		}
	}
	return nil
}

func containsID(s []int64, v int64) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}
