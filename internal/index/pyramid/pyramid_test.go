package pyramid

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

var testSpace = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func randomEntries(rng *rand.Rand, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{ID: int64(i), Loc: geom.Pt(rng.Float64()*100, rng.Float64()*100)}
	}
	return es
}

func clusteredEntries(rng *rand.Rand, n int) []Entry {
	// All entries in one quadrant corner, forcing sparse quadrant merges.
	es := make([]Entry, n)
	for i := range es {
		es[i] = Entry{ID: int64(i), Loc: geom.Pt(rng.Float64()*10, rng.Float64()*10)}
	}
	return es
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(testSpace, nil, Options{Levels: 0}); err == nil {
		t.Error("Levels=0 should fail")
	}
	if _, err := Build(geom.Rect{}, nil, Options{Levels: 3}); err == nil {
		t.Error("zero-area space should fail")
	}
	if _, err := Build(testSpace, []Entry{{ID: 1}, {ID: 1}}, Options{Levels: 3}); err == nil {
		t.Error("duplicate IDs should fail")
	}
}

func TestBuildAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idx, err := Build(testSpace, randomEntries(rng, 500), Options{Levels: 5})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 500 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Root cell holds everything.
	root := idx.Cell(CellKey{Level: 0})
	if root == nil || len(root.Entries) != 500 {
		t.Fatalf("root entries = %v", root)
	}
	// Level 1 cells partition the entries.
	total := 0
	for _, c := range idx.NonEmptyCells(1) {
		total += len(c.Entries)
	}
	if total != 500 {
		t.Errorf("level-1 cells hold %d entries, want 500", total)
	}
}

func TestSparseQuadrantsMerged(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	idx, err := Build(testSpace, clusteredEntries(rng, 100), Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All entries live in [0,10]², i.e. one level-1 quadrant; the other
	// three level-1 quadrants are empty, so the level-1 quadrant set must
	// have been merged into the root.
	if cells := idx.NonEmptyCells(1); len(cells) != 0 {
		t.Errorf("sparse level-1 quadrants not merged: %d cells remain", len(cells))
	}
	// Root still answers.
	if c := idx.LowestCell(geom.Pt(5, 5)); c == nil || c.Key.Level != 0 {
		t.Errorf("lowest cell = %+v, want root", c)
	}
}

func TestDenseLevelsRetained(t *testing.T) {
	// Spread entries across all quadrants so no merge should occur at
	// level 1.
	var es []Entry
	id := int64(0)
	for _, x := range []float64{10, 35, 60, 85} {
		for _, y := range []float64{10, 35, 60, 85} {
			for k := 0; k < 3; k++ {
				es = append(es, Entry{ID: id, Loc: geom.Pt(x+float64(k), y)})
				id++
			}
		}
	}
	idx, err := Build(testSpace, es, Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(idx.NonEmptyCells(1)); got != 4 {
		t.Errorf("level-1 cells = %d, want 4", got)
	}
	if got := len(idx.NonEmptyCells(2)); got != 16 {
		t.Errorf("level-2 cells = %d, want 16", got)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLowestCell(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	entries := randomEntries(rng, 300)
	idx, err := Build(testSpace, entries, Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries[:50] {
		c := idx.LowestCell(e.Loc)
		if c == nil {
			t.Fatalf("no cell for %v", e.Loc)
		}
		if !c.Region.ContainsPoint(e.Loc) {
			t.Fatalf("cell %v does not contain %v", c.Key, e.Loc)
		}
	}
}

func TestInsertIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	idx, err := Build(testSpace, randomEntries(rng, 50), Options{Levels: 4, Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 400; i++ {
		e := Entry{ID: int64(i), Loc: geom.Pt(rng.Float64()*100, rng.Float64()*100)}
		if err := idx.Insert(e); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			if err := idx.CheckInvariants(); err != nil {
				t.Fatalf("after insert %d: %v", i, err)
			}
		}
	}
	if idx.Len() != 400 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(Entry{ID: 10}); err == nil {
		t.Error("duplicate insert should fail")
	}
}

func TestInsertSplitsOverCapacity(t *testing.T) {
	// Start with an almost-empty pyramid, then pour entries into one spot;
	// the lowest cell must split once over capacity.
	idx, err := Build(testSpace, []Entry{{ID: 0, Loc: geom.Pt(1, 1)}}, Options{Levels: 4, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 1; i <= 40; i++ {
		if err := idx.Insert(Entry{ID: int64(i), Loc: geom.Pt(rng.Float64()*100, rng.Float64()*100)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// With 41 spread entries and capacity 4, deeper levels must exist.
	if len(idx.NonEmptyCells(1)) == 0 {
		t.Error("expected level-1 cells after splits")
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	entries := randomEntries(rng, 200)
	idx, err := Build(testSpace, entries, Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries[:150] {
		if err := idx.Delete(e.ID); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 50 {
		t.Fatalf("Len = %d, want 50", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(9999); err == nil {
		t.Error("deleting unknown ID should fail")
	}
	// Deleting everything leaves a consistent (possibly empty) pyramid.
	for _, e := range entries[150:] {
		if err := idx.Delete(e.ID); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 0 {
		t.Fatalf("Len = %d, want 0", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteChurnProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	idx, err := Build(testSpace, nil, Options{Levels: 5, Capacity: 6})
	if err != nil {
		t.Fatal(err)
	}
	live := map[int64]geom.Point{}
	nextID := int64(0)
	for step := 0; step < 2000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			loc := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			if err := idx.Insert(Entry{ID: nextID, Loc: loc}); err != nil {
				t.Fatal(err)
			}
			live[nextID] = loc
			nextID++
		} else {
			var victim int64 = -1
			for id := range live {
				victim = id
				break
			}
			if err := idx.Delete(victim); err != nil {
				t.Fatal(err)
			}
			delete(live, victim)
		}
		if step%250 == 0 {
			if err := idx.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if idx.Len() != len(live) {
				t.Fatalf("step %d: Len=%d live=%d", step, idx.Len(), len(live))
			}
		}
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesOutsideSpaceClamped(t *testing.T) {
	es := []Entry{
		{ID: 0, Loc: geom.Pt(-50, -50)},
		{ID: 1, Loc: geom.Pt(500, 500)},
		{ID: 2, Loc: geom.Pt(50, 50)},
	}
	idx, err := Build(testSpace, es, Options{Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 3 {
		t.Fatalf("Len = %d", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLocate(t *testing.T) {
	idx, err := Build(testSpace, []Entry{{ID: 7, Loc: geom.Pt(3, 4)}}, Options{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := idx.Locate(7); !ok || p != geom.Pt(3, 4) {
		t.Errorf("Locate = %v %v", p, ok)
	}
	if _, ok := idx.Locate(8); ok {
		t.Error("Locate unknown should fail")
	}
}
