package sya

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section VI), wrapping the internal/bench runners at reduced scale so the
// whole suite stays in the minutes range. Run the cmd/syabench binary for
// paper-style output and larger workloads; EXPERIMENTS.md records the
// observed-vs-paper shapes.

import (
	"testing"

	"repro/internal/bench"
)

// benchParams returns the reduced-scale parameters used by the benchmark
// wrappers.
func benchParams() bench.Params {
	p := bench.DefaultParams()
	p.GWDBWells = 250
	p.NYCCASSide = 14
	p.Epochs = 150
	p.Runs = 1
	p.Workers = 0 // sampler worker-pool width: GOMAXPROCS
	return p
}

func runExperiment(b *testing.B, fn func(bench.Params) (*bench.Table, error)) {
	b.Helper()
	p := benchParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkTable1Stats regenerates Table I (KB statistics).
func BenchmarkTable1Stats(b *testing.B) { runExperiment(b, bench.Table1) }

// BenchmarkFig1EbolaKB regenerates Fig. 1 (EbolaKB factual scores,
// DeepDive vs Sya).
func BenchmarkFig1EbolaKB(b *testing.B) { runExperiment(b, bench.Fig1) }

// BenchmarkFig8PrecisionRecall regenerates Fig. 8 (precision and recall vs
// DeepDive on GWDB and NYCCAS).
func BenchmarkFig8PrecisionRecall(b *testing.B) { runExperiment(b, bench.Fig8) }

// BenchmarkFig9F1AndTime regenerates Fig. 9 (F1-score plus grounding and
// inference times).
func BenchmarkFig9F1AndTime(b *testing.B) { runExperiment(b, bench.Fig9) }

// BenchmarkFig10StepRules regenerates Fig. 10 (DeepDive step-function rule
// expansion vs Sya).
func BenchmarkFig10StepRules(b *testing.B) { runExperiment(b, bench.Fig10) }

// BenchmarkFig11Pruning regenerates Fig. 11 (pruning threshold T trade-off
// on the categorical GWDB).
func BenchmarkFig11Pruning(b *testing.B) { runExperiment(b, bench.Fig11) }

// BenchmarkFig12Epochs regenerates Fig. 12 (F1 and inference time vs epoch
// budget).
func BenchmarkFig12Epochs(b *testing.B) { runExperiment(b, bench.Fig12) }

// BenchmarkFig13Incremental regenerates Fig. 13 (incremental inference
// latency and locality-level sweep).
func BenchmarkFig13Incremental(b *testing.B) { runExperiment(b, bench.Fig13) }

// BenchmarkFig14KL regenerates Fig. 14 (KL divergence vs sampling time for
// spatial vs standard Gibbs).
func BenchmarkFig14KL(b *testing.B) { runExperiment(b, bench.Fig14) }

// BenchmarkAblation runs the beyond-the-paper component ablation
// (spatial factors × sampler).
func BenchmarkAblation(b *testing.B) { runExperiment(b, bench.Ablation) }
