// Package sya is the public API of this reproduction of "Sya: Enabling
// Spatial Awareness inside Probabilistic Knowledge Base Construction"
// (Sabek & Mokbel, ICDE 2020): a spatial probabilistic knowledge base
// construction system based on Markov Logic Networks.
//
// A System is configured with an engine (Sya or the DeepDive baseline),
// loads a spatial-DDlog program and input/evidence relations, grounds the
// program into a spatial factor graph, and infers the factual score
// (marginal probability) of every knowledge base relation:
//
//	s := sya.New(sya.Config{Engine: sya.EngineSya, Metric: sya.MetricMiles})
//	if err := s.LoadProgram(program); err != nil { ... }
//	if err := s.LoadRows("County", rows); err != nil { ... }
//	if _, err := s.Ground(); err != nil { ... }
//	scores, err := s.Infer()
//	p, _ := scores.TrueProb("HasEbola", sya.Vals(sya.Int(2), sya.Point(-10.45, 6.55)))
//
// The language is DDlog extended with spatial types (point, rectangle,
// polygon, linestring), spatial predicates (distance, within, overlaps,
// ...), the @spatial(w) annotation that generates distance-weighted spatial
// factors between ground atoms of a variable relation, and @weight(w) rule
// confidences. See the examples/ directory for complete programs.
package sya

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/gibbs"
	"repro/internal/grounding"
	"repro/internal/learn"
	"repro/internal/storage"
)

// Engine selects the pipeline mode.
type Engine = core.Engine

// Engine modes.
const (
	// EngineSya runs the paper's system: spatial factor graph plus Spatial
	// Gibbs Sampling over a conclique-partitioned pyramid index.
	EngineSya = core.EngineSya
	// EngineDeepDive runs the baseline: boolean spatial predicates, no
	// spatial factors, hogwild parallel Gibbs sampling.
	EngineDeepDive = core.EngineDeepDive
)

// Metric selects how rule distances and spatial-factor weights measure
// space.
type Metric = geom.Metric

// Distance metrics.
const (
	// MetricEuclidean is planar distance in coordinate units.
	MetricEuclidean = geom.Euclidean
	// MetricMiles is great-circle distance in statute miles over
	// (longitude, latitude) coordinates.
	MetricMiles = geom.HaversineMiles
	// MetricKm is great-circle distance in kilometres.
	MetricKm = geom.HaversineKm
)

// Config parameterizes a System; see core.Config for field semantics.
type Config = core.Config

// System is one knowledge-base construction pipeline.
type System = core.System

// Scores holds inferred factual scores.
type Scores = core.Scores

// UDF is a user-defined extraction function usable from DDlog function
// declarations.
type UDF = grounding.UDF

// LearnOptions configures weight learning (System.LearnWeights): the
// inference rules' tied weights are fit to the loaded evidence by
// contrastive divergence instead of being fixed by the program author.
type LearnOptions = learn.Options

// MAPOptions configures MAP inference (System.MAP): simulated annealing to
// the single most probable knowledge base.
type MAPOptions = gibbs.MAPOptions

// RunStats reports how a context-aware inference run ended: how many full
// epochs completed and why it stopped (System.InferContext).
type RunStats = gibbs.RunStats

// StopReason says why an inference run stopped.
type StopReason = gibbs.StopReason

// Stop reasons.
const (
	// ReasonDone: the run completed its epoch budget.
	ReasonDone = gibbs.ReasonDone
	// ReasonCanceled: the context was canceled; marginals are partial.
	ReasonCanceled = gibbs.ReasonCanceled
	// ReasonDeadline: the context deadline passed; marginals are partial.
	ReasonDeadline = gibbs.ReasonDeadline
	// ReasonPanic: a sampler worker panicked; the error is a
	// *WorkerPanicError.
	ReasonPanic = gibbs.ReasonPanic
)

// WorkerPanicError is the error a sampler run returns when a worker
// goroutine panicked: the panic value plus the worker's stack trace.
type WorkerPanicError = gibbs.WorkerPanicError

// Checkpointer configures periodic sampler snapshots (see
// Config.CheckpointPath for the usual way to enable them).
type Checkpointer = gibbs.Checkpointer

// Checkpoint is a versioned snapshot of sampler chain state.
type Checkpoint = gibbs.Checkpoint

// World is a MAP assignment of all ground atoms.
type World = core.World

// Value is a runtime relation value.
type Value = storage.Value

// Row is one relation tuple.
type Row = storage.Row

// New creates a System.
func New(cfg Config) *System { return core.NewSystem(cfg) }

// Int builds an integer value.
func Int(v int64) Value { return storage.Int(v) }

// Float builds a double value.
func Float(v float64) Value { return storage.Float(v) }

// Bool builds a boolean value.
func Bool(v bool) Value { return storage.Bool(v) }

// Str builds a text value.
func Str(v string) Value { return storage.Str(v) }

// Point builds a point geometry value.
func Point(x, y float64) Value { return storage.Geom(geom.Pt(x, y)) }

// Null is the NULL value.
var Null = storage.Null

// Vals builds a value slice (ground-atom key arguments).
func Vals(vs ...Value) []Value { return vs }
