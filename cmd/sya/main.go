// Command sya compiles and runs a spatial DDlog program: it loads input
// relations from CSV files, grounds the program into a spatial factor
// graph, runs inference, and prints the factual score of every ground atom.
//
// Usage:
//
//	sya -program kb.ddlog -load County=counties.csv -load CountyEvidence=ev.csv \
//	    [-engine sya|deepdive] [-metric euclidean|miles|km] [-epochs N] \
//	    [-bandwidth B] [-scale S] [-seed N] [-stats] [-ground-workers N] \
//	    [-timeout D] [-checkpoint file] [-checkpoint-every N] \
//	    [-metrics-addr host:port] [-trace-out file.jsonl] [-trace-max-mb N] \
//	    [-progress N] [-local-atom relation|terms -local-budget N]
//	    [-shards N [-shard-addrs host:port,...]] [-chunk-grain N]
//
// CSV files need a header row naming the relation's columns (order free).
// Spatial columns parse WKT ("POINT (1 2)"); boolean columns accept
// true/false/1/0; empty cells load as NULL.
//
// Long runs are interruptible: -timeout bounds the whole pipeline, and ^C
// (SIGINT/SIGTERM) stops sampling gracefully — either way the scores
// accumulated so far are still printed, flagged as partial. With
// -checkpoint the sampler snapshots its chain state every -checkpoint-every
// epochs (keeping the previous snapshot at <file>.prev) and a rerun pointing
// at the same file resumes where it left off, falling back to the previous
// snapshot if the newest is torn.
//
// Observability: -metrics-addr serves live Prometheus-text /metrics,
// /debug/vars and /debug/pprof/ while the run is in flight; -trace-out
// writes structured JSONL phase events (grounding per rule, learning per
// iteration, inference per epoch), with -trace-max-mb bounding its on-disk
// size by rotating to <file>.1; -progress N prints a convergence diagnostic
// line to stderr every N epochs.
//
// Grounding runs on a worker pool sized by -ground-workers (default
// GOMAXPROCS); the grounded factor graph is bit-identical for any width.
//
// Sharded batch inference: -shards N partitions the ground graph by pyramid
// subtree into N share-nothing shards (each with its own subgraph, compiled
// kernels and sampler) synchronized by a halo exchange at every epoch
// barrier; -shard-addrs switches the exchange from in-process channels to
// length-prefixed CRC-framed TCP. A sharded run checkpoints per shard
// (<file>.shard<i>) and resumes like a single-process one. -chunk-grain
// caps the sampler work-chunk size (cells per spatial chunk, variables per
// hogwild bucket) without changing the chains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/gibbs"
	"repro/internal/learn"
	"repro/internal/obs"
)

func main() {
	var loads cliutil.LoadFlag
	var (
		programPath = flag.String("program", "", "DDlog program file (required)")
		engine      = flag.String("engine", "sya", "engine: sya | deepdive")
		metric      = flag.String("metric", "euclidean", "distance metric: euclidean | miles | km")
		epochs      = flag.Int("epochs", 1000, "inference epochs")
		bandwidth   = flag.Float64("bandwidth", 50, "spatial weighing bandwidth")
		scale       = flag.Float64("scale", 1, "spatial weighing zero-distance scale")
		seed        = flag.Int64("seed", 1, "sampler seed")
		showStats   = flag.Bool("stats", false, "print grounding statistics")
		learnIters  = flag.Int("learn", 0, "learn rule weights from evidence for N iterations before inference")
		saveGraph   = flag.String("save-graph", "", "write the ground factor graph snapshot to this file")
		timeout     = flag.Duration("timeout", 0, "bound the whole run; partial scores are still printed (0 = none)")
		ckptPath    = flag.String("checkpoint", "", "snapshot sampler state to this file and resume from it if it exists")
		ckptEvery   = flag.Int("checkpoint-every", 100, "epochs between checkpoint snapshots (≥ 1)")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while running")
		traceOut    = flag.String("trace-out", "", "write structured JSONL phase-trace events to this file")
		traceMaxMB  = flag.Int("trace-max-mb", 0, "rotate -trace-out to <file>.1 when it exceeds this many MB (0 = unbounded)")
		progress    = flag.Int("progress", 0, "print a convergence diagnostic to stderr every N epochs (0 = off)")
		groundWork  = flag.Int("ground-workers", 0, "grounding worker-pool width (0 = GOMAXPROCS, 1 = sequential; output graph is identical)")
		noKernels   = flag.Bool("no-kernels", false, "score with the interpreted factor walk instead of compiled sampling kernels (bit-identical; escape hatch)")
		localAtom   = flag.String("local-atom", "", "answer one atom key (relation|term,...) by lazy local grounding instead of full inference")
		localBudget = flag.Int("local-budget", 0, "variable budget for -local-atom: sample a bounded subgraph of at most N variables (0 = 256)")
		chunkGrain  = flag.Int("chunk-grain", 0, "cap sampler work-chunk size: cells per spatial chunk / variables per hogwild bucket (0 = engine defaults)")
		shards      = flag.Int("shards", 0, "partition the ground graph into N share-nothing shards with halo exchange (sya engine, batch inference; 0/1 = single-process)")
		shardAddrs  = flag.String("shard-addrs", "", "comma-separated per-shard TCP listen addresses (length -shards); empty = in-process transports")
	)
	flag.Var(&loads, "load", "Relation=file.csv (repeatable)")
	flag.Parse()
	if *programPath == "" {
		fmt.Fprintln(os.Stderr, "sya: -program is required")
		flag.Usage()
		os.Exit(2)
	}
	if *ckptEvery < 1 {
		fmt.Fprintf(os.Stderr, "sya: -checkpoint-every must be ≥ 1 (got %d)\n", *ckptEvery)
		flag.Usage()
		os.Exit(2)
	}
	err := run(runOpts{
		program: *programPath, loads: loads.Pairs,
		engine: *engine, metric: *metric,
		epochs: *epochs, bandwidth: *bandwidth, scale: *scale, seed: *seed,
		stats: *showStats, learnIters: *learnIters, saveGraph: *saveGraph,
		timeout: *timeout, ckptPath: *ckptPath, ckptEvery: *ckptEvery,
		metricsAddr: *metricsAddr, traceOut: *traceOut, traceMaxMB: *traceMaxMB,
		progress: *progress, groundWorkers: *groundWork,
		noKernels: *noKernels, chunkGrain: *chunkGrain,
		shards: *shards, shardAddrs: *shardAddrs,
		localAtom: *localAtom, localBudget: *localBudget,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sya: %v\n", err)
		os.Exit(1)
	}
}

// runOpts carries the resolved command-line configuration into run.
type runOpts struct {
	program string
	loads   [][2]string
	engine  string
	metric  string

	epochs     int
	bandwidth  float64
	scale      float64
	seed       int64
	stats      bool
	learnIters int
	saveGraph  string

	timeout   time.Duration
	ckptPath  string
	ckptEvery int

	metricsAddr   string
	traceOut      string
	traceMaxMB    int
	progress      int
	groundWorkers int
	noKernels     bool
	chunkGrain    int
	shards        int
	shardAddrs    string

	localAtom   string
	localBudget int
}

func run(o runOpts) error {
	if o.ckptEvery < 0 {
		return fmt.Errorf("-checkpoint-every must not be negative (got %d)", o.ckptEvery)
	}
	// One context governs the whole pipeline: grounding, learning and
	// sampling all stop within a chunk of ^C or the -timeout deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	src, err := os.ReadFile(o.program)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Epochs:    o.epochs,
		Bandwidth: o.bandwidth, SpatialScale: o.scale,
		Seed:           o.seed,
		GroundWorkers:  o.groundWorkers,
		NoKernels:      o.noKernels,
		ChunkGrain:     o.chunkGrain,
		Shards:         o.shards,
		CheckpointPath: o.ckptPath, CheckpointEvery: o.ckptEvery,
	}
	if o.shardAddrs != "" {
		cfg.ShardAddrs = strings.Split(o.shardAddrs, ",")
		if len(cfg.ShardAddrs) != o.shards {
			return fmt.Errorf("-shard-addrs lists %d addresses, -shards is %d", len(cfg.ShardAddrs), o.shards)
		}
	}
	if o.metricsAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		srv, err := obs.Serve(o.metricsAddr, cfg.Metrics)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "# metrics: http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr)
	}
	if o.traceOut != "" {
		tr, err := obs.OpenTraceRotating(o.traceOut, int64(o.traceMaxMB)<<20)
		if err != nil {
			return err
		}
		cfg.Trace = tr
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "# WARNING: trace %s: %v\n", o.traceOut, err)
			}
		}()
	}
	if o.progress > 0 {
		cfg.ProgressEvery = o.progress
		cfg.Progress = func(p gibbs.Progress) {
			fmt.Fprintf(os.Stderr, "# progress: %s epoch %d, max-delta %.6f, spread %.6f\n",
				p.Sampler, p.Epoch, p.Diag.MaxDelta, p.Diag.Spread)
		}
	}
	if cfg.Engine, err = cliutil.ParseEngine(o.engine); err != nil {
		return err
	}
	if cfg.Metric, err = cliutil.ParseMetric(o.metric); err != nil {
		return err
	}
	s := core.NewSystem(cfg)
	defer s.Close()
	if err := s.LoadProgram(string(src)); err != nil {
		return err
	}
	for _, pair := range o.loads {
		if err := cliutil.LoadCSV(s, pair[0], pair[1]); err != nil {
			return fmt.Errorf("loading %s from %s: %w", pair[0], pair[1], err)
		}
	}
	gres, err := s.GroundContext(ctx)
	if err != nil {
		return err
	}
	if o.stats {
		st := gres.Stats
		fmt.Printf("# grounding: %d vars (%d evidence, %d query), %d logical factors, %d spatial pairs (%d ground spatial factors) in %v\n",
			st.Vars, st.EvidenceVars, st.QueryVars, st.LogicalFactors,
			st.SpatialPairs, st.GroundSpatialFactors, st.TotalTime.Round(1e6))
		var rules []string
		for r := range st.RuleFactors {
			rules = append(rules, r)
		}
		sort.Strings(rules)
		for _, r := range rules {
			fmt.Printf("# rule %s: %d factors\n", r, st.RuleFactors[r])
		}
	}
	if o.saveGraph != "" {
		f, err := os.Create(o.saveGraph)
		if err != nil {
			return err
		}
		if err := s.SaveGraph(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("# ground factor graph saved to %s\n", o.saveGraph)
	}
	if o.learnIters > 0 {
		weights, err := s.LearnWeightsContext(ctx, learn.Options{Iterations: o.learnIters, Seed: o.seed, NoKernels: o.noKernels})
		if err != nil {
			return err
		}
		var names []string
		for r := range weights {
			names = append(names, r)
		}
		sort.Strings(names)
		for _, r := range names {
			fmt.Printf("# learned weight %s = %+.4f\n", r, weights[r])
		}
	}
	if o.localAtom != "" {
		return runLocal(ctx, s, o)
	}
	scores, stats, err := s.InferContext(ctx, o.epochs)
	if err != nil {
		var wp *gibbs.WorkerPanicError
		if errors.As(err, &wp) {
			fmt.Fprintf(os.Stderr, "sya: sampler worker panicked; chain state kept at the last epoch barrier\n%s", wp.Stack)
		}
		return err
	}
	fmt.Printf("# inference: %d epochs in %v (%s engine)\n", o.epochs, s.InferenceTime().Round(1e6), cfg.Engine)
	if stats.DiagValid {
		fmt.Printf("# convergence: max-delta %.6f, spread %.6f at epoch %d\n",
			stats.Diag.MaxDelta, stats.Diag.Spread, stats.Diag.Epoch)
	}
	if stats.Reason != gibbs.ReasonDone {
		fmt.Printf("# WARNING: run stopped early (%s) after %d full epochs — scores below are partial\n",
			stats.Reason, stats.Epochs)
	}
	// Print factual scores per variable relation, sorted by key.
	for _, rel := range s.Program().VariableRelations() {
		type entry struct {
			key string
			m   []float64
		}
		var entries []entry
		scores.Each(rel.Name, func(key string, _ int32, m []float64) bool {
			entries = append(entries, entry{key: key, m: m})
			return true
		})
		sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
		for _, e := range entries {
			if len(e.m) == 2 {
				fmt.Printf("%s\t%.4f\n", e.key, e.m[1])
				continue
			}
			parts := make([]string, len(e.m))
			for i, p := range e.m {
				parts[i] = fmt.Sprintf("%.4f", p)
			}
			fmt.Printf("%s\t[%s]\n", e.key, strings.Join(parts, " "))
		}
	}
	return nil
}

// runLocal answers one atom by query-driven lazy grounding: a bounded
// subgraph around the atom is extracted, compiled and sampled — the rest of
// the KB is never touched by inference.
func runLocal(ctx context.Context, s *core.System, o runOpts) error {
	res, err := s.QueryLocal(ctx, o.localAtom, core.LocalBudget{MaxVars: o.localBudget, Epochs: o.epochs})
	if err != nil {
		return err
	}
	fmt.Printf("# local query: %d vars (+%d frozen boundary), %d factors, %d spatial pairs\n",
		res.Vars, res.BoundaryVars, res.Factors, res.SpatialPairs)
	fmt.Printf("# local query: ground %v, sample %v, truncation bound %.4f (truncated: %v)\n",
		res.GroundTime.Round(time.Microsecond), res.SampleTime.Round(time.Microsecond), res.ErrorBound, res.Truncated)
	keys := make([]string, 0, len(res.Interior))
	for k := range res.Interior {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := res.Interior[k]
		if len(m) == 2 {
			fmt.Printf("%s\t%.4f\n", k, m[1])
			continue
		}
		parts := make([]string, len(m))
		for i, p := range m {
			parts[i] = fmt.Sprintf("%.4f", p)
		}
		fmt.Printf("%s\t[%s]\n", k, strings.Join(parts, " "))
	}
	return nil
}
