package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
)

// writeFixtures creates a program and CSV files for the EbolaKB scenario.
func writeFixtures(t *testing.T) (program, countyCSV, evidenceCSV string) {
	t.Helper()
	dir := t.TempDir()
	program = filepath.Join(dir, "kb.ddlog")
	if err := os.WriteFile(program, []byte(datagen.EbolaProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	countyCSV = filepath.Join(dir, "county.csv")
	county := "id,location,hasLowSanitation\n" +
		"1,POINT (-10.80 6.32),true\n" +
		"2,POINT (-10.45 6.55),true\n" +
		"3,POINT (-9.45 7.05),1\n" +
		"4,POINT (-8.90 7.60),false\n"
	if err := os.WriteFile(countyCSV, []byte(county), 0o644); err != nil {
		t.Fatal(err)
	}
	evidenceCSV = filepath.Join(dir, "evidence.csv")
	ev := "id,location,hasEbola\n1,POINT (-10.80 6.32),true\n"
	if err := os.WriteFile(evidenceCSV, []byte(ev), 0o644); err != nil {
		t.Fatal(err)
	}
	return program, countyCSV, evidenceCSV
}

func TestRunEndToEnd(t *testing.T) {
	program, county, evidence := writeFixtures(t)
	graphPath := filepath.Join(t.TempDir(), "graph.bin")
	err := run(program, [][2]string{{"County", county}, {"CountyEvidence", evidence}},
		"sya", "miles", 300, 60, 1, 7, true, 10, graphPath, 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(graphPath); err != nil || fi.Size() == 0 {
		t.Errorf("graph snapshot not written: %v", err)
	}
	// DeepDive engine too.
	err = run(program, [][2]string{{"County", county}, {"CountyEvidence", evidence}},
		"deepdive", "miles", 100, 60, 1, 7, false, 0, "", 0, "", 0)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointAndTimeout(t *testing.T) {
	program, county, evidence := writeFixtures(t)
	loads := [][2]string{{"County", county}, {"CountyEvidence", evidence}}

	// A checkpointed run leaves a resumable snapshot behind.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if err := run(program, loads, "sya", "miles", 300, 60, 1, 7, false, 0, "", 0, ckpt, 50); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// A second run resumes from it rather than failing.
	if err := run(program, loads, "sya", "miles", 300, 60, 1, 7, false, 0, "", 0, ckpt, 50); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	// An immediate -timeout interrupts the pipeline during grounding; the
	// error is the context's, not a crash.
	err := run(program, loads, "sya", "miles", 300, 60, 1, 7, false, 0, "", time.Nanosecond, "", 0)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("timeout run error = %v, want a deadline error", err)
	}
}

func TestRunErrors(t *testing.T) {
	program, county, _ := writeFixtures(t)
	if err := run("missing.ddlog", nil, "sya", "miles", 10, 50, 1, 1, false, 0, "", 0, "", 0); err == nil {
		t.Error("missing program should fail")
	}
	if err := run(program, nil, "bogus", "miles", 10, 50, 1, 1, false, 0, "", 0, "", 0); err == nil {
		t.Error("bad engine should fail")
	}
	if err := run(program, nil, "sya", "bogus", 10, 50, 1, 1, false, 0, "", 0, "", 0); err == nil {
		t.Error("bad metric should fail")
	}
	if err := run(program, [][2]string{{"Nope", county}}, "sya", "miles", 10, 50, 1, 1, false, 0, "", 0, "", 0); err == nil {
		t.Error("unknown relation should fail")
	}
	if err := run(program, [][2]string{{"County", "missing.csv"}}, "sya", "miles", 10, 50, 1, 1, false, 0, "", 0, "", 0); err == nil {
		t.Error("missing csv should fail")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	program, _, _ := writeFixtures(t)
	dir := t.TempDir()
	badHeader := filepath.Join(dir, "bad1.csv")
	_ = os.WriteFile(badHeader, []byte("id,nope\n1,2\n"), 0o644)
	if err := run(program, [][2]string{{"County", badHeader}}, "sya", "miles", 10, 50, 1, 1, false, 0, "", 0, "", 0); err == nil {
		t.Error("unknown column should fail")
	}
	badBool := filepath.Join(dir, "bad2.csv")
	_ = os.WriteFile(badBool, []byte("id,location,hasLowSanitation\n1,POINT (0 0),maybe\n"), 0o644)
	if err := run(program, [][2]string{{"County", badBool}}, "sya", "miles", 10, 50, 1, 1, false, 0, "", 0, "", 0); err == nil {
		t.Error("bad bool should fail")
	}
	badWKT := filepath.Join(dir, "bad3.csv")
	_ = os.WriteFile(badWKT, []byte("id,location,hasLowSanitation\n1,CIRCLE (0),true\n"), 0o644)
	if err := run(program, [][2]string{{"County", badWKT}}, "sya", "miles", 10, 50, 1, 1, false, 0, "", 0, "", 0); err == nil {
		t.Error("bad WKT should fail")
	}
}

func TestLoadFlag(t *testing.T) {
	var l loadFlag
	if err := l.Set("A=file.csv"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("broken"); err == nil {
		t.Error("malformed pair should fail")
	}
	if err := l.Set("=x.csv"); err == nil {
		t.Error("empty relation should fail")
	}
	if len(l.pairs) != 1 || l.String() == "" {
		t.Errorf("pairs = %v", l.pairs)
	}
}
