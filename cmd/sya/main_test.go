package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
)

// writeFixtures creates a program and CSV files for the EbolaKB scenario.
func writeFixtures(t *testing.T) (program, countyCSV, evidenceCSV string) {
	t.Helper()
	dir := t.TempDir()
	program = filepath.Join(dir, "kb.ddlog")
	if err := os.WriteFile(program, []byte(datagen.EbolaProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	countyCSV = filepath.Join(dir, "county.csv")
	county := "id,location,hasLowSanitation\n" +
		"1,POINT (-10.80 6.32),true\n" +
		"2,POINT (-10.45 6.55),true\n" +
		"3,POINT (-9.45 7.05),1\n" +
		"4,POINT (-8.90 7.60),false\n"
	if err := os.WriteFile(countyCSV, []byte(county), 0o644); err != nil {
		t.Fatal(err)
	}
	evidenceCSV = filepath.Join(dir, "evidence.csv")
	ev := "id,location,hasEbola\n1,POINT (-10.80 6.32),true\n"
	if err := os.WriteFile(evidenceCSV, []byte(ev), 0o644); err != nil {
		t.Fatal(err)
	}
	return program, countyCSV, evidenceCSV
}

// opts builds the baseline runOpts for the fixtures; tests tweak the result.
func opts(program string, loads [][2]string) runOpts {
	return runOpts{
		program: program, loads: loads,
		engine: "sya", metric: "miles",
		epochs: 10, bandwidth: 50, scale: 1, seed: 1,
	}
}

func TestRunEndToEnd(t *testing.T) {
	program, county, evidence := writeFixtures(t)
	loads := [][2]string{{"County", county}, {"CountyEvidence", evidence}}
	graphPath := filepath.Join(t.TempDir(), "graph.bin")

	o := opts(program, loads)
	o.epochs, o.bandwidth, o.seed = 300, 60, 7
	o.stats, o.learnIters, o.saveGraph = true, 10, graphPath
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(graphPath); err != nil || fi.Size() == 0 {
		t.Errorf("graph snapshot not written: %v", err)
	}

	// DeepDive engine too.
	o = opts(program, loads)
	o.engine, o.epochs, o.bandwidth, o.seed = "deepdive", 100, 60, 7
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointAndTimeout(t *testing.T) {
	program, county, evidence := writeFixtures(t)
	loads := [][2]string{{"County", county}, {"CountyEvidence", evidence}}

	// A checkpointed run leaves a resumable snapshot behind.
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	o := opts(program, loads)
	o.epochs, o.bandwidth, o.seed = 300, 60, 7
	o.ckptPath, o.ckptEvery = ckpt, 50
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(ckpt); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// A second run resumes from it rather than failing.
	if err := run(o); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	// An immediate -timeout interrupts the pipeline during grounding; the
	// error is the context's, not a crash.
	o = opts(program, loads)
	o.epochs, o.bandwidth, o.seed = 300, 60, 7
	o.timeout = time.Nanosecond
	err := run(o)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Errorf("timeout run error = %v, want a deadline error", err)
	}
}

func TestRunObservability(t *testing.T) {
	program, county, evidence := writeFixtures(t)
	loads := [][2]string{{"County", county}, {"CountyEvidence", evidence}}
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")

	o := opts(program, loads)
	o.epochs, o.seed = 40, 7
	o.learnIters = 5
	o.metricsAddr = "127.0.0.1:0" // bound inside run; we only check it starts
	o.traceOut = tracePath
	o.progress = 10
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	// The trace file must be parseable JSONL covering all three phases.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	phases := map[string]int{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("trace line %q not JSON: %v", sc.Text(), err)
		}
		phase, _ := ev["phase"].(string)
		phases[phase]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"grounding", "learning", "inference"} {
		if phases[phase] == 0 {
			t.Errorf("trace has no %q events (got %v)", phase, phases)
		}
	}
}

func TestRunRejectsNegativeCheckpointEvery(t *testing.T) {
	program, county, _ := writeFixtures(t)
	o := opts(program, [][2]string{{"County", county}})
	o.ckptEvery = -1
	if err := run(o); err == nil || !strings.Contains(err.Error(), "checkpoint-every") {
		t.Errorf("negative -checkpoint-every error = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	program, county, _ := writeFixtures(t)
	if err := run(opts("missing.ddlog", nil)); err == nil {
		t.Error("missing program should fail")
	}
	o := opts(program, nil)
	o.engine = "bogus"
	if err := run(o); err == nil {
		t.Error("bad engine should fail")
	}
	o = opts(program, nil)
	o.metric = "bogus"
	if err := run(o); err == nil {
		t.Error("bad metric should fail")
	}
	if err := run(opts(program, [][2]string{{"Nope", county}})); err == nil {
		t.Error("unknown relation should fail")
	}
	if err := run(opts(program, [][2]string{{"County", "missing.csv"}})); err == nil {
		t.Error("missing csv should fail")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	program, _, _ := writeFixtures(t)
	dir := t.TempDir()
	badHeader := filepath.Join(dir, "bad1.csv")
	_ = os.WriteFile(badHeader, []byte("id,nope\n1,2\n"), 0o644)
	if err := run(opts(program, [][2]string{{"County", badHeader}})); err == nil {
		t.Error("unknown column should fail")
	}
	badBool := filepath.Join(dir, "bad2.csv")
	_ = os.WriteFile(badBool, []byte("id,location,hasLowSanitation\n1,POINT (0 0),maybe\n"), 0o644)
	if err := run(opts(program, [][2]string{{"County", badBool}})); err == nil {
		t.Error("bad bool should fail")
	}
	badWKT := filepath.Join(dir, "bad3.csv")
	_ = os.WriteFile(badWKT, []byte("id,location,hasLowSanitation\n1,CIRCLE (0),true\n"), 0o644)
	if err := run(opts(program, [][2]string{{"County", badWKT}})); err == nil {
		t.Error("bad WKT should fail")
	}
}
