// Command syabench regenerates the paper's evaluation tables and figures
// (Section VI) over the synthetic GWDB and NYCCAS datasets.
//
// Usage:
//
//	syabench [flags] <experiment>...
//	syabench -list
//	syabench all
//
// Experiments: table1, fig1, fig8, fig9, fig10, fig11, fig12, fig13,
// fig14, ablation, serving, local, shard. Flags scale the workloads; -paper approaches the paper's
// sizes (slow). -metrics-addr serves live Prometheus metrics and pprof for
// the duration of the suite; -trace-out records JSONL phase traces
// (-trace-max-mb bounds the file via rotation). -phase=grounding restricts
// the suite to grounding-only comparisons (table1, fig9, fig10 with
// inference skipped); -phase=local runs the lazy-grounding budget sweep
// (-local-json writes BENCH_local.json); -phase=shard runs the sharded
// share-nothing inference sweep plus the chunk-grain sweep (-shard-json
// writes BENCH_shard.json); -ground-workers sizes the grounding worker pool;
// -chunk-grain caps the sampler work-chunk size for every experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

var experiments = map[string]func(bench.Params) (*bench.Table, error){
	"table1":   bench.Table1,
	"fig1":     bench.Fig1,
	"fig8":     bench.Fig8,
	"fig9":     bench.Fig9,
	"fig10":    bench.Fig10,
	"fig11":    bench.Fig11,
	"fig12":    bench.Fig12,
	"fig13":    bench.Fig13,
	"fig14":    bench.Fig14,
	"ablation": bench.Ablation,
	"serving":  bench.Serving,
	"local":    bench.Local,
	"shard":    bench.Shard,
}

// order fixes the "all" execution sequence.
var order = []string{
	"table1", "fig1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "ablation", "serving", "local", "shard",
}

// groundingPhase lists the experiments that remain meaningful under
// -phase=grounding (their ground-time/size columns do not need inference);
// the rest are inference-bound and are skipped in that mode.
var groundingPhase = map[string]bool{
	"table1": true,
	"fig9":   true,
	"fig10":  true,
}

// servingPhase lists the experiments -phase=serving runs: the resident-KB
// load harness only.
var servingPhase = map[string]bool{
	"serving": true,
}

// localPhase lists the experiments -phase=local runs: the lazy-grounding
// budget sweep only.
var localPhase = map[string]bool{
	"local": true,
}

// shardPhase lists the experiments -phase=shard runs: the sharded-inference
// sweep (shard counts + chunk-grain) only.
var shardPhase = map[string]bool{
	"shard": true,
}

func main() {
	defaults := bench.DefaultParams()
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		paper   = flag.Bool("paper", false, "approach the paper's workload sizes (slow)")
		wells   = flag.Int("wells", defaults.GWDBWells, "GWDB synthetic well count")
		side    = flag.Int("side", defaults.NYCCASSide, "NYCCAS raster side length (cells)")
		ep      = flag.Int("epochs", defaults.Epochs, "inference epoch budget E")
		runs    = flag.Int("runs", defaults.Runs, "averaging runs for quality metrics")
		seed    = flag.Int64("seed", defaults.Seed, "base RNG seed")
		work    = flag.Int("workers", defaults.Workers, "sampler worker-pool width (0 = GOMAXPROCS)")
		gwork   = flag.Int("ground-workers", defaults.GroundWorkers, "grounding worker-pool width (0 = GOMAXPROCS, 1 = sequential; output graph is identical)")
		phase   = flag.String("phase", "", "restrict to one pipeline phase: grounding (skip inference, blank quality columns) or serving (resident-KB load harness)")
		noKern  = flag.Bool("no-kernels", false, "score with the interpreted factor walk instead of compiled sampling kernels (bit-identical; for measuring the kernel speedup)")
		timeout = flag.Duration("timeout", 0, "stop starting new experiments after this long (0 = none)")

		servingJSON = flag.String("serving-json", "", "with the serving experiment, write its machine-readable report (BENCH_serving.json shape) to this path")
		localJSON   = flag.String("local-json", "", "with the local experiment, write its machine-readable report (BENCH_local.json shape) to this path")
		shardJSON   = flag.String("shard-json", "", "with the shard experiment, write its machine-readable report (BENCH_shard.json shape) to this path")
		grain       = flag.Int("chunk-grain", 0, "cap sampler work-chunk size: cells per spatial chunk / variables per hogwild bucket (0 = engine defaults)")

		metricsAddr = flag.String("metrics-addr", "", "serve live /metrics, /debug/vars and pprof on this address while experiments run")
		traceOut    = flag.String("trace-out", "", "write JSONL phase-trace events for every experiment to this file")
		traceMaxMB  = flag.Int("trace-max-mb", 0, "rotate -trace-out to <file>.1 when it exceeds this many MB (0 = unbounded)")
	)
	flag.Parse()
	if *list {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	p := defaults
	if *paper {
		p = bench.PaperScaleParams()
	}
	if *metricsAddr != "" {
		p.Metrics = obs.NewRegistry()
		srv, err := obs.Serve(*metricsAddr, p.Metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syabench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "# metrics: http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr)
	}
	if *traceOut != "" {
		tr, err := obs.OpenTraceRotating(*traceOut, int64(*traceMaxMB)<<20)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syabench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "# WARNING: trace %s: %v\n", *traceOut, err)
			}
		}()
		p.Trace = tr
	}
	p.GWDBWells = *wells
	p.NYCCASSide = *side
	p.Epochs = *ep
	p.Runs = *runs
	p.Seed = *seed
	p.Workers = *work
	p.GroundWorkers = *gwork
	p.NoKernels = *noKern
	p.ServingJSON = *servingJSON
	p.LocalJSON = *localJSON
	p.ShardJSON = *shardJSON
	p.ChunkGrain = *grain
	servingOnly := false
	localOnly := false
	shardOnly := false
	switch *phase {
	case "":
	case "grounding":
		p.GroundOnly = true
	case "serving":
		servingOnly = true
	case "local":
		localOnly = true
	case "shard":
		shardOnly = true
	default:
		fmt.Fprintf(os.Stderr, "syabench: unknown -phase %q (supported: grounding, serving, local, shard)\n", *phase)
		os.Exit(2)
	}
	if *paper {
		// Flag overrides apply on top of paper scale only when changed.
		pp := bench.PaperScaleParams()
		if *wells == defaults.GWDBWells {
			p.GWDBWells = pp.GWDBWells
		}
		if *side == defaults.NYCCASSide {
			p.NYCCASSide = pp.NYCCASSide
		}
		if *ep == defaults.Epochs {
			p.Epochs = pp.Epochs
		}
		if *runs == defaults.Runs {
			p.Runs = pp.Runs
		}
	}

	args := flag.Args()
	if len(args) == 0 && servingOnly {
		args = []string{"serving"}
	}
	if len(args) == 0 && localOnly {
		args = []string{"local"}
	}
	if len(args) == 0 && shardOnly {
		args = []string{"shard"}
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: syabench [flags] <experiment>... | all | -list")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = order
	}
	// -timeout is a between-experiments budget: each experiment runs to
	// completion (its tables stay internally consistent), but once the
	// deadline passes no further experiment starts.
	var deadline time.Time
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}
	for i, name := range args {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "syabench: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		if p.GroundOnly && !groundingPhase[name] {
			fmt.Fprintf(os.Stderr, "syabench: -phase=grounding: skipping inference-bound experiment %s\n", name)
			continue
		}
		if servingOnly && !servingPhase[name] {
			fmt.Fprintf(os.Stderr, "syabench: -phase=serving: skipping non-serving experiment %s\n", name)
			continue
		}
		if localOnly && !localPhase[name] {
			fmt.Fprintf(os.Stderr, "syabench: -phase=local: skipping non-local experiment %s\n", name)
			continue
		}
		if shardOnly && !shardPhase[name] {
			fmt.Fprintf(os.Stderr, "syabench: -phase=shard: skipping non-shard experiment %s\n", name)
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "syabench: -timeout %v reached, skipping %v\n", *timeout, args[i:])
			break
		}
		start := time.Now()
		tbl, err := fn(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "syabench: %s: %v\n", name, err)
			p.Trace.Close() // os.Exit skips the deferred flush
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
