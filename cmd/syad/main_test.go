package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
)

// writeFixtures creates a program and CSV files for the EbolaKB scenario.
func writeFixtures(t *testing.T) (program, countyCSV, evidenceCSV string) {
	t.Helper()
	dir := t.TempDir()
	program = filepath.Join(dir, "kb.ddlog")
	if err := os.WriteFile(program, []byte(datagen.EbolaProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	countyCSV = filepath.Join(dir, "county.csv")
	county := "id,location,hasLowSanitation\n" +
		"1,POINT (-10.80 6.32),true\n" +
		"2,POINT (-10.45 6.55),true\n" +
		"3,POINT (-9.45 7.05),true\n" +
		"4,POINT (-8.90 7.60),false\n"
	if err := os.WriteFile(countyCSV, []byte(county), 0o644); err != nil {
		t.Fatal(err)
	}
	evidenceCSV = filepath.Join(dir, "evidence.csv")
	ev := "id,location,hasEbola\n1,POINT (-10.80 6.32),true\n"
	if err := os.WriteFile(evidenceCSV, []byte(ev), 0o644); err != nil {
		t.Fatal(err)
	}
	return program, countyCSV, evidenceCSV
}

func baseOpts(program string, loads [][2]string) runOpts {
	return runOpts{
		program: program, loads: loads,
		addr: "127.0.0.1:0", engine: "sya", metric: "miles",
		epochs: 500, bandwidth: 60, scale: 1, seed: 7,
		readTimeout: time.Minute, readHeaderTimeout: 10 * time.Second,
		writeTimeout: time.Minute, drainTimeout: 5 * time.Second,
	}
}

// startDaemon runs the server in the background and returns its base URL and
// a stop function that shuts it down and reports run's error.
func startDaemon(t *testing.T, o runOpts) (base string, stop func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	o.ready = func(addr string) { ready <- addr }
	errc := make(chan error, 1)
	go func() { errc <- run(ctx, o) }()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		cancel()
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("server not ready after 30s")
	}
	return base, func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			return fmt.Errorf("server did not exit after cancel")
		}
	}
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func TestDaemonEndToEnd(t *testing.T) {
	program, county, evidence := writeFixtures(t)
	o := baseOpts(program, [][2]string{{"County", county}, {"CountyEvidence", evidence}})
	o.label = "ebola"
	o.cacheTTL = time.Minute
	base, stop := startDaemon(t, o)

	var health struct {
		Status string `json:"status"`
		Vars   int    `json:"vars"`
	}
	if code := getJSON(t, base+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if health.Status != "ok" || health.Vars != 4 {
		t.Errorf("health = %+v", health)
	}

	var pt struct {
		Atoms []struct {
			Key   string  `json:"key"`
			Score float64 `json:"score"`
		} `json:"atoms"`
	}
	if code := getJSON(t, base+"/v1/score/point?relation=HasEbola&x=-10.80&y=6.32", &pt); code != http.StatusOK {
		t.Fatalf("point = %d", code)
	}
	if len(pt.Atoms) != 1 || pt.Atoms[0].Score != 1 {
		t.Errorf("evidence county score = %+v, want exactly 1", pt.Atoms)
	}

	// Upsert evidence for county 3 and read the pinned score back.
	body := `{"relation":"CountyEvidence","rows":[["3","POINT (-9.45 7.05)","true"]]}`
	resp, err := http.Post(base+"/v1/evidence", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	upsert, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evidence = %d: %s", resp.StatusCode, upsert)
	}
	if code := getJSON(t, base+"/v1/score/point?relation=HasEbola&x=-9.45&y=7.05", &pt); code != http.StatusOK {
		t.Fatalf("point after upsert = %d", code)
	}
	if len(pt.Atoms) != 1 || pt.Atoms[0].Score != 1 {
		t.Errorf("upserted county score = %+v, want exactly 1", pt.Atoms)
	}

	// Metrics carry the -label and count the traffic.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`sya_serve_requests_total{system="ebola"}`,
		`sya_serve_upserts_total{system="ebola"} 1`,
		`sya_epochs_total`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDaemonWALRestart reboots the daemon on the same WAL and asserts the
// upserted evidence survives — including when a crash left a torn half-frame
// at the log's tail.
func TestDaemonWALRestart(t *testing.T) {
	program, county, evidence := writeFixtures(t)
	walPath := filepath.Join(t.TempDir(), "ev.wal")
	o := baseOpts(program, [][2]string{{"County", county}, {"CountyEvidence", evidence}})
	o.walPath = walPath

	base, stop := startDaemon(t, o)
	body := `{"relation":"CountyEvidence","rows":[["3","POINT (-9.45 7.05)","true"]]}`
	resp, err := http.Post(base+"/v1/evidence", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upsert = %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	// Simulate a crash mid-append of a later batch: garbage after the last
	// complete frame, as a torn write would leave it.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	base, stop = startDaemon(t, o)
	var pt struct {
		Atoms []struct {
			Score float64 `json:"score"`
		} `json:"atoms"`
	}
	if code := getJSON(t, base+"/v1/score/point?relation=HasEbola&x=-9.45&y=7.05", &pt); code != http.StatusOK {
		t.Fatalf("point after restart = %d", code)
	}
	if len(pt.Atoms) != 1 || pt.Atoms[0].Score != 1 {
		t.Errorf("replayed county score = %+v, want exactly 1", pt.Atoms)
	}
	var metrics string
	{
		mresp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		metrics = string(raw)
	}
	for _, want := range []string{
		"sya_wal_replayed_records_total 1",
		"sya_wal_truncated_tails_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestDaemonErrors(t *testing.T) {
	program, county, _ := writeFixtures(t)
	ctx := context.Background()
	if err := run(ctx, baseOpts("missing.ddlog", nil)); err == nil {
		t.Error("missing program should fail")
	}
	o := baseOpts(program, nil)
	o.engine = "bogus"
	if err := run(ctx, o); err == nil {
		t.Error("bad engine should fail")
	}
	o = baseOpts(program, nil)
	o.metric = "bogus"
	if err := run(ctx, o); err == nil {
		t.Error("bad metric should fail")
	}
	if err := run(ctx, baseOpts(program, [][2]string{{"County", "missing.csv"}})); err == nil {
		t.Error("missing csv should fail")
	}
	o = baseOpts(program, [][2]string{{"County", county}})
	o.addr = "256.0.0.1:-1"
	if err := run(ctx, o); err == nil {
		t.Error("bad listen address should fail")
	}
}
