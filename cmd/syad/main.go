// Command syad runs a resident KB server: it loads and grounds a spatial
// DDlog program exactly like the sya batch CLI, warms the sampler up, and
// then serves factual-score queries and evidence upserts over HTTP until
// interrupted.
//
// Usage:
//
//	syad -program kb.ddlog -load County=counties.csv -load CountyEvidence=ev.csv \
//	    [-addr host:port] [-engine sya|deepdive] [-metric euclidean|miles|km] \
//	    [-epochs N] [-warmup-epochs N] [-upsert-epochs N] [-cache-ttl D] \
//	    [-local-budget N] [-local-epochs N] \
//	    [-bandwidth B] [-scale S] [-seed N] [-ground-workers N] [-label NAME] \
//	    [-trace-out file.jsonl] [-trace-max-mb N] \
//	    [-trace-ring N] [-slow-ms D] \
//	    [-wal file.wal] [-wal-sync-every N] [-wal-snapshot-every N] \
//	    [-max-queued-upserts N] [-upsert-timeout D] \
//	    [-read-timeout D] [-read-header-timeout D] [-write-timeout D] \
//	    [-drain-timeout D]
//
// API (JSON):
//
//	GET  /v1/score/point?relation=R&x=X&y=Y[&budget=N]  score at a location
//	GET  /v1/score/range?relation=R&minx&miny&maxx&maxy
//	GET  /v1/score/knn?relation=R&x=X&y=Y&k=K        k nearest atoms
//	GET  /v1/explain?key=relation|term,...           score provenance for one atom
//	POST /v1/evidence {"relation": R, "rows": [[cell, ...], ...]}
//	GET  /healthz
//	GET  /metrics, /debug/traces, /debug/pprof/*
//
// Every request is traced: per-stage timings (lock wait, R-tree probe,
// WAL fsync, delta grounding, conclique resample) land in a ring of the
// last -trace-ring completed traces served at /debug/traces, W3C
// traceparent headers are accepted and echoed, and requests slower than
// -slow-ms are logged as structured JSON on stderr. -trace-ring 0 turns
// request tracing off entirely (the handlers then pay only a branch per
// stage).
//
// Evidence upserts fold in without a restart: the delta grounder re-evaluates
// only the rules that touch the upserted relation, pins the affected
// variables, and resamples the dirty concliques for -upsert-epochs epochs.
// A structural change (new ground atoms, variable-relation rows) falls back
// to a full re-ground + re-warmup automatically.
//
// With -wal, every accepted evidence batch is appended to a CRC-framed
// write-ahead log before it is applied, and replayed on the next boot — a
// crash (even SIGKILL mid-upsert) loses nothing that was acked. The log is
// compacted into a rotating snapshot pair every -wal-snapshot-every records.
// Overload is shed: at most -max-queued-upserts evidence requests may be in
// flight (429 beyond that), and reads during an upsert or re-ground are
// served from the previous generation's snapshot with "stale": true.
//
// The -load pairs, engine and metric spellings are shared with the sya CLI,
// so a batch invocation can be lifted into a resident server by swapping the
// binary name. ^C / SIGTERM drains in-flight requests for -drain-timeout,
// fsyncs and closes the WAL, and exits cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var loads cliutil.LoadFlag
	var (
		programPath = flag.String("program", "", "DDlog program file (required)")
		addr        = flag.String("addr", "127.0.0.1:8090", "HTTP listen address")
		engine      = flag.String("engine", "sya", "engine: sya | deepdive")
		metric      = flag.String("metric", "euclidean", "distance metric: euclidean | miles | km")
		epochs      = flag.Int("epochs", 1000, "default inference epoch budget")
		warmupEp    = flag.Int("warmup-epochs", 0, "initial sampling epochs before serving (0 = -epochs)")
		upsertEp    = flag.Int("upsert-epochs", 0, "incremental epochs after each evidence upsert (0 = -epochs)")
		cacheTTL    = flag.Duration("cache-ttl", 0, "score-cache entry lifetime (0 = entries live until the next resample)")
		localBudget = flag.Int("local-budget", 0, "default lazy-grounding variable budget for point queries: answer from a bounded subgraph of at most N sampled variables (0 = full-graph path; ?budget= overrides per request)")
		localEpochs = flag.Int("local-epochs", 0, "sampling epochs per lazy point query (0 = -epochs)")
		bandwidth   = flag.Float64("bandwidth", 50, "spatial weighing bandwidth")
		scale       = flag.Float64("scale", 1, "spatial weighing zero-distance scale")
		seed        = flag.Int64("seed", 1, "sampler seed")
		groundWork  = flag.Int("ground-workers", 0, "grounding worker-pool width (0 = GOMAXPROCS)")
		noKernels   = flag.Bool("no-kernels", false, "score with the interpreted factor walk instead of compiled sampling kernels")
		chunkGrain  = flag.Int("chunk-grain", 0, "cap sampler work-chunk size: cells per spatial chunk / variables per hogwild bucket (0 = engine defaults)")
		label       = flag.String("label", "", "metrics label: scope all series with {system=NAME}")
		traceOut    = flag.String("trace-out", "", "write structured JSONL phase-trace events to this file")
		traceMaxMB  = flag.Int("trace-max-mb", 0, "rotate -trace-out to <file>.1 when it exceeds this many MB (0 = unbounded)")
		traceRing   = flag.Int("trace-ring", 64, "completed request traces retained for /debug/traces (0 = request tracing off)")
		slowMS      = flag.Int("slow-ms", 0, "log requests slower than this many milliseconds as structured JSON (0 = off)")

		walPath       = flag.String("wal", "", "evidence write-ahead log file: append accepted upserts before applying, replay on boot (\"\" = durability off)")
		walSyncEvery  = flag.Int("wal-sync-every", 1, "fsync the WAL after every N appends (1 = every append)")
		walSnapEvery  = flag.Int("wal-snapshot-every", 64, "compact the WAL into its snapshot pair after N log records (0 = never)")
		maxUpserts    = flag.Int("max-queued-upserts", 32, "maximum in-flight evidence upserts before shedding with 429")
		upsertTimeout = flag.Duration("upsert-timeout", 0, "server-side deadline for the inference phase of one upsert (0 = client-bounded only)")
		readTimeout   = flag.Duration("read-timeout", time.Minute, "http.Server ReadTimeout (whole-request read deadline)")
		readHdrTO     = flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		writeTimeout  = flag.Duration("write-timeout", 5*time.Minute, "http.Server WriteTimeout (bounds slow upserts + slow readers)")
		drainTimeout  = flag.Duration("drain-timeout", 5*time.Second, "how long shutdown waits for in-flight requests before force-closing")
	)
	flag.Var(&loads, "load", "Relation=file.csv (repeatable)")
	flag.Parse()
	if *programPath == "" {
		fmt.Fprintln(os.Stderr, "syad: -program is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, runOpts{
		program: *programPath, loads: loads.Pairs,
		addr: *addr, engine: *engine, metric: *metric,
		epochs: *epochs, warmupEpochs: *warmupEp, upsertEpochs: *upsertEp,
		cacheTTL: *cacheTTL, localBudget: *localBudget, localEpochs: *localEpochs,
		bandwidth: *bandwidth, scale: *scale, seed: *seed,
		groundWorkers: *groundWork, noKernels: *noKernels, chunkGrain: *chunkGrain, label: *label,
		traceOut: *traceOut, traceMaxMB: *traceMaxMB,
		traceRing: *traceRing, slowMS: *slowMS,
		walPath: *walPath, walSyncEvery: *walSyncEvery, walSnapshotEvery: *walSnapEvery,
		maxQueuedUpserts: *maxUpserts, upsertTimeout: *upsertTimeout,
		readTimeout: *readTimeout, readHeaderTimeout: *readHdrTO,
		writeTimeout: *writeTimeout, drainTimeout: *drainTimeout,
		ready: func(addr string) {
			fmt.Fprintf(os.Stderr, "# syad: serving http://%s (metrics at /metrics, pprof under /debug/pprof/)\n", addr)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "syad: %v\n", err)
		os.Exit(1)
	}
}

// runOpts carries the resolved command-line configuration into run.
type runOpts struct {
	program string
	loads   [][2]string
	addr    string
	engine  string
	metric  string

	epochs       int
	warmupEpochs int
	upsertEpochs int
	cacheTTL     time.Duration
	localBudget  int
	localEpochs  int

	bandwidth     float64
	scale         float64
	seed          int64
	groundWorkers int
	noKernels     bool
	chunkGrain    int
	label         string
	traceOut      string
	traceMaxMB    int
	traceRing     int
	slowMS        int

	walPath          string
	walSyncEvery     int
	walSnapshotEvery int
	maxQueuedUpserts int
	upsertTimeout    time.Duration

	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	drainTimeout      time.Duration

	// ready, when non-nil, is called with the bound listen address once the
	// server is warmed up and accepting requests.
	ready func(addr string)
}

// run builds the system, warms it up, and serves until ctx is canceled.
func run(ctx context.Context, o runOpts) (err error) {
	src, err := os.ReadFile(o.program)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	cfg := core.Config{
		Epochs:    o.epochs,
		Bandwidth: o.bandwidth, SpatialScale: o.scale,
		Seed:          o.seed,
		GroundWorkers: o.groundWorkers,
		NoKernels:     o.noKernels,
		ChunkGrain:    o.chunkGrain,
		Metrics:       reg,
		MetricLabel:   o.label,
	}
	if cfg.Engine, err = cliutil.ParseEngine(o.engine); err != nil {
		return err
	}
	if cfg.Metric, err = cliutil.ParseMetric(o.metric); err != nil {
		return err
	}
	if o.traceOut != "" {
		tr, err := obs.OpenTraceRotating(o.traceOut, int64(o.traceMaxMB)<<20)
		if err != nil {
			return err
		}
		cfg.Trace = tr
		defer func() {
			if err := tr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "# WARNING: trace %s: %v\n", o.traceOut, err)
			}
		}()
	}
	sys := core.NewSystem(cfg)
	if err := sys.LoadProgram(string(src)); err != nil {
		sys.Close()
		return err
	}
	for _, pair := range o.loads {
		if err := cliutil.LoadCSV(sys, pair[0], pair[1]); err != nil {
			sys.Close()
			return fmt.Errorf("loading %s from %s: %w", pair[0], pair[1], err)
		}
	}
	if _, err := sys.GroundContext(ctx); err != nil {
		sys.Close()
		return err
	}

	serveMetrics := reg
	if o.label != "" {
		serveMetrics = reg.With("system", o.label)
	}
	var tracer *obs.Tracer
	if o.traceRing > 0 {
		tracer = obs.NewTracer(obs.TracerOptions{
			RingSize:      o.traceRing,
			SlowThreshold: time.Duration(o.slowMS) * time.Millisecond,
			Logger:        slog.New(slog.NewJSONHandler(os.Stderr, nil)),
		})
	}
	srv, err := serve.New(sys, serve.Options{
		Epochs:           o.upsertEpochs,
		CacheTTL:         o.cacheTTL,
		Metrics:          serveMetrics,
		WALPath:          o.walPath,
		WALSyncEvery:     o.walSyncEvery,
		WALSnapshotEvery: o.walSnapshotEvery,
		MaxQueuedUpserts: o.maxQueuedUpserts,
		UpsertTimeout:    o.upsertTimeout,
		Tracer:           tracer,
		LocalBudget:      o.localBudget,
		LocalEpochs:      o.localEpochs,
	})
	if err != nil {
		sys.Close()
		return err
	}
	// Close syncs the WAL: surface its error so a failed final fsync is not
	// silently swallowed on shutdown.
	defer func() {
		if cerr := srv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if o.walPath != "" {
		rs := srv.ReplayStats()
		fmt.Fprintf(os.Stderr, "# syad: wal %s: replayed %d snapshot + %d log records", o.walPath, rs.SnapshotRecords, rs.LogRecords)
		if rs.Truncated {
			fmt.Fprintf(os.Stderr, " (torn tail truncated at byte %d)", rs.TruncatedAt)
		}
		if rs.SnapshotFallback {
			fmt.Fprint(os.Stderr, " (snapshot fell back to previous generation)")
		}
		fmt.Fprintln(os.Stderr)
	}
	if err := srv.Warmup(ctx, o.warmupEpochs); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.ready != nil {
		o.ready(ln.Addr().String())
	}
	// The explicit timeouts close the slowloris hole: a client that trickles
	// its headers or body, or never reads its response, is disconnected
	// instead of pinning a connection (and an upsert slot) forever.
	hsrv := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       o.readTimeout,
		ReadHeaderTimeout: o.readHeaderTimeout,
		WriteTimeout:      o.writeTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Drain in-flight requests, then force-close stragglers. The deferred
	// srv.Close fsyncs the WAL after the drain, so a SIGTERM never loses an
	// acked upsert.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := hsrv.Shutdown(shutdownCtx); err != nil {
		hsrv.Close()
	}
	<-errc // always http.ErrServerClosed after Shutdown/Close
	return nil
}
