package sya_test

import (
	"testing"

	sya "repro"
)

const testProgram = `
Sensor (id bigint, location point, reading double).
SensorEvidence (id bigint, location point, hot bool).

@spatial(exp)
IsHot? (id bigint, location point).

D1: IsHot(S, L) = NULL :- Sensor(S, L, _).
D2: IsHot(S, L) = H :- SensorEvidence(S, L, H).

R1: @weight(0.8) IsHot(S, L) :- Sensor(S, L, R) [R > 0.6].
R2: @weight(0.5) !IsHot(S, L) :- Sensor(S, L, _).
`

func buildSystem(t *testing.T, engine sya.Engine) (*sya.System, *sya.Scores) {
	t.Helper()
	s := sya.New(sya.Config{
		Engine:    engine,
		Metric:    sya.MetricEuclidean,
		Bandwidth: 10,
		Epochs:    2000,
		Seed:      1,
	})
	if err := s.LoadProgram(testProgram); err != nil {
		t.Fatal(err)
	}
	rows := []sya.Row{
		{sya.Int(1), sya.Point(0, 0), sya.Float(0.7)},
		{sya.Int(2), sya.Point(5, 0), sya.Float(0.5)},
		{sya.Int(3), sya.Point(30, 0), sya.Float(0.5)},
	}
	if err := s.LoadRows("Sensor", rows); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadRows("SensorEvidence", []sya.Row{
		{sya.Int(1), sya.Point(0, 0), sya.Bool(true)},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ground(); err != nil {
		t.Fatal(err)
	}
	scores, err := s.Infer()
	if err != nil {
		t.Fatal(err)
	}
	return s, scores
}

func TestPublicAPIEndToEnd(t *testing.T) {
	_, scores := buildSystem(t, sya.EngineSya)
	p1, ok := scores.TrueProb("IsHot", sya.Vals(sya.Int(1), sya.Point(0, 0)))
	if !ok || p1 != 1 {
		t.Fatalf("evidence score = %v %v", p1, ok)
	}
	p2, ok2 := scores.TrueProb("IsHot", sya.Vals(sya.Int(2), sya.Point(5, 0)))
	p3, ok3 := scores.TrueProb("IsHot", sya.Vals(sya.Int(3), sya.Point(30, 0)))
	if !ok2 || !ok3 {
		t.Fatal("missing scores")
	}
	// Spatial decay: the nearby sensor scores above the distant one.
	if !(p2 > p3) {
		t.Errorf("spatial decay violated: near=%v far=%v", p2, p3)
	}
	if _, ok := scores.TrueProb("IsHot", sya.Vals(sya.Int(99), sya.Point(0, 0))); ok {
		t.Error("unknown atom lookup should fail")
	}
}

func TestPublicAPIBaselineEngine(t *testing.T) {
	s, scores := buildSystem(t, sya.EngineDeepDive)
	if s.Grounding().Stats.SpatialPairs != 0 {
		t.Error("baseline should not generate spatial pairs")
	}
	if _, ok := scores.TrueProb("IsHot", sya.Vals(sya.Int(2), sya.Point(5, 0))); !ok {
		t.Error("baseline missing score")
	}
}

func TestPublicAPIValueHelpers(t *testing.T) {
	vals := sya.Vals(sya.Int(1), sya.Float(2.5), sya.Bool(true), sya.Str("x"), sya.Point(1, 2), sya.Null)
	if len(vals) != 6 {
		t.Fatalf("Vals = %d", len(vals))
	}
	if vals[5].Kind != sya.Null.Kind {
		t.Error("Null mismatch")
	}
}
